(* Batched-write equivalence: Server.put_batch is specified as
   byte-identical to the same puts applied sequentially in ascending key
   order (stable, so the last duplicate wins). This suite replays one
   deterministic mixed workload through both paths under every
   optimization-toggle variant and compares full store transcripts, and
   checks the scan [?limit] contract and the fuzzer's batch generator. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Fuzz = Pequod_fuzz.Fuzz

let check_bool = Test_util.check_bool
let check_int = Test_util.check_int

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"
let karma_join = "karma|<author> = count vote|<author>|<id>|<voter>"

(* ------------------------------------------------------------------ *)
(* put_batch == sequential puts, across config variants                *)

type wop =
  | Batch of (string * string) list
  | Single of string * string
  | Del of string
  | Read of string * string (* force join materialization mid-stream *)

let users = [| "ann"; "bob"; "cal" |]
let tm n = Strkey.encode_int ~width:4 n

(* deterministic workload: batches mix subscription, post and vote keys
   (spanning tables), some repeat a key, reads interleave so updaters are
   live when later batches arrive *)
let workload =
  let rng = Rng.create 0xBA7C4 in
  let sub () = Printf.sprintf "s|%s|%s" (Rng.pick rng users) (Rng.pick rng users) in
  let post () = Printf.sprintf "p|%s|%s" (Rng.pick rng users) (tm (Rng.int rng 30)) in
  let vote () =
    Printf.sprintf "vote|%s|%s|%s" (Rng.pick rng users)
      (Rng.pick rng [| "01"; "02" |])
      (Rng.pick rng users)
  in
  let pair () =
    match Rng.int rng 3 with
    | 0 -> (sub (), "1")
    | 1 -> (post (), Printf.sprintf "m%d" (Rng.int rng 100))
    | _ -> (vote (), "1")
  in
  List.init 400 (fun _ ->
      match Rng.int rng 10 with
      | 0 | 1 | 2 | 3 ->
        let n = 1 + Rng.int rng 8 in
        let pairs = List.init n (fun _ -> pair ()) in
        let pairs =
          (* repeat a key with a different value: last write must win *)
          if n >= 2 && Rng.int rng 3 = 0 then
            pairs @ [ (fst (List.nth pairs 0), snd (List.nth pairs (n - 1))) ]
          else pairs
        in
        Batch pairs
      | 4 | 5 | 6 ->
        let k, v = pair () in
        Single (k, v)
      | 7 ->
        let k, _ = pair () in
        Del k
      | _ -> (
        match Rng.int rng 3 with
        | 0 -> Read ("t|", "t}")
        | 1 -> Read ("karma|", "karma}")
        | _ -> Read ("", "\xfe")))

(* expand a batch to the sequential puts it is documented to equal *)
let expand pairs = List.stable_sort (fun (a, _) (b, _) -> String.compare a b) pairs

let transcript ~batched config =
  let server = Server.create ~config () in
  Server.add_join_exn server timeline_join;
  Server.add_join_exn server karma_join;
  let buf = Buffer.create 8192 in
  List.iter
    (fun op ->
      (match op with
      | Batch pairs ->
        if batched then Server.put_batch server pairs
        else List.iter (fun (k, v) -> Server.put server k v) (expand pairs)
      | Single (k, v) -> Server.put server k v
      | Del k -> Server.remove server k
      | Read (lo, hi) ->
        List.iter (fun (k, v) -> Printf.bprintf buf "%S=%S\n" k v) (Server.scan server ~lo ~hi));
      Server.check_invariants server)
    workload;
  (* final resident state, byte for byte *)
  Server.iter_pairs server (fun k v -> Printf.bprintf buf "%S=%S\n" k v);
  Printf.bprintf buf "size=%d memory=%d\n" (Server.size server) (Server.memory_bytes server);
  Buffer.contents buf

let variants =
  [
    ("default", fun _ -> ());
    ("eager checks", fun c -> c.Config.lazy_checks <- false);
    ("no output hints", fun c -> c.Config.output_hints <- false);
    ( "no sharing, no combining",
      fun c ->
        c.Config.value_sharing <- false;
        c.Config.combine_updaters <- false );
    ( "bare engine",
      fun c ->
        c.Config.output_hints <- false;
        c.Config.lazy_checks <- false;
        c.Config.value_sharing <- false;
        c.Config.combine_updaters <- false );
  ]

let test_equivalence () =
  List.iter
    (fun (name, tweak) ->
      let make () =
        let c = Config.default () in
        c.Config.now <- (fun () -> 1_000_000.0);
        tweak c;
        c
      in
      let b = transcript ~batched:true (make ()) in
      let s = transcript ~batched:false (make ()) in
      if b <> s then Alcotest.failf "variant %S: batched and sequential transcripts differ" name)
    variants

(* ------------------------------------------------------------------ *)
(* scan ?limit                                                         *)

let test_scan_limit () =
  let config = Config.default () in
  config.Config.now <- (fun () -> 1_000_000.0);
  let server = Server.create ~config () in
  Server.add_join_exn server timeline_join;
  Server.put_batch server
    [
      ("s|ann|bob", "1"); ("s|ann|cal", "1");
      ("p|bob|0003", "b3"); ("p|bob|0001", "b1");
      ("p|cal|0002", "c2"); ("p|cal|0004", "c4");
    ];
  let full = Server.scan server ~lo:"t|ann|" ~hi:"t|ann}" in
  check_int "four timeline entries" 4 (List.length full);
  let rec take n = function x :: r when n > 0 -> x :: take (n - 1) r | _ -> [] in
  for n = 0 to 5 do
    Alcotest.(check (list (pair string string)))
      (Printf.sprintf "limit %d is a prefix" n)
      (take n full)
      (Server.scan ~limit:n server ~lo:"t|ann|" ~hi:"t|ann}")
  done;
  (* cold cache: the limited scan still materializes the join correctly *)
  let cold = Server.create ~config () in
  Server.add_join_exn cold timeline_join;
  Server.put_batch cold
    [ ("s|ann|bob", "1"); ("p|bob|0001", "b1"); ("p|bob|0002", "b2") ];
  Alcotest.(check (list (pair string string)))
    "cold limited scan" [ ("t|ann|0001|bob", "b1") ]
    (Server.scan ~limit:1 cold ~lo:"t|ann|" ~hi:"t|ann}");
  match Server.scan_result ~limit:2 cold ~lo:"t|ann|" ~hi:"t|ann}" with
  | `Ok [ ("t|ann|0001|bob", "b1"); ("t|ann|0002|bob", "b2") ] -> ()
  | _ -> Alcotest.fail "scan_result limit"

(* ------------------------------------------------------------------ *)
(* the fuzzer's batch generator really exercises the interesting cases *)

let test_fuzz_batches () =
  let total = ref 0 and batches = ref 0 and dups = ref 0 and span = ref 0 in
  Array.iteri
    (fun i sc ->
      let rng = Rng.create (Fuzz.derive_seed 42 i) in
      List.iter
        (fun op ->
          incr total;
          match op with
          | Fuzz.Put_batch pairs ->
            incr batches;
            (* the repro line codec must round-trip every batch *)
            let line = Fuzz.op_to_line op in
            (match Fuzz.op_of_line line with
            | Some (Fuzz.Put_batch p) when p = pairs -> ()
            | _ -> Alcotest.failf "repro roundtrip failed: %s" line);
            let keys = List.map fst pairs in
            if List.length keys <> List.length (List.sort_uniq compare keys) then incr dups;
            let table k =
              match String.index_opt k '|' with Some j -> String.sub k 0 j | None -> k
            in
            if List.length (List.sort_uniq compare (List.map table keys)) > 1 then incr span
          | _ -> ())
        (Fuzz.gen_ops sc rng ~max_ops:400))
    Fuzz.scenarios;
  check_bool "batches generated" true (!batches > 20);
  check_bool "some batches repeat a key" true (!dups > 0);
  check_bool "some batches span tables" true (!span > 0)

let () =
  Alcotest.run "batch"
    [
      ( "put_batch",
        [
          Alcotest.test_case "equivalent to sequential puts" `Quick test_equivalence;
          Alcotest.test_case "scan limit" `Quick test_scan_limit;
          Alcotest.test_case "fuzz generator coverage" `Quick test_fuzz_batches;
        ] );
    ]
