(* Fault-injection tests for the durability subsystem (lib/persist):
   log replay, snapshots, torn tails, corrupt records, stale snapshots
   with newer logs, rotation/compaction, and presence bookkeeping
   (owned ranges survive recovery; fetched ranges refetch). *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Persist = Pequod_persist.Persist
module Wal = Pequod_persist.Wal
module Snapshot = Pequod_persist.Snapshot
module Record = Pequod_persist.Record

let check_bool = Test_util.check_bool
let check_int = Test_util.check_int
let fresh_dir () = Test_util.fresh_dir ~prefix:"pequod-persist" ()

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let persist_cfg ?(sync = Config.Sync_always) ?(snapshot_every = 0) ?wal_max_bytes dir =
  let p = Config.default_persist ~dir in
  p.Config.p_sync <- sync;
  p.Config.p_snapshot_every <- snapshot_every;
  (match wal_max_bytes with Some n -> p.Config.p_wal_max_bytes <- n | None -> ());
  p

let durable_server ?sync ?snapshot_every ?wal_max_bytes dir =
  let s = Server.create () in
  let p = Persist.attach s (persist_cfg ?sync ?snapshot_every ?wal_max_bytes dir) in
  (s, p)

(* A miniature Twip population: follows then posts, so the timeline join
   has work to do on the first scan. *)
let populate s =
  Server.add_join_exn s timeline_join;
  List.iter
    (fun (k, v) -> Server.put s k v)
    [ ("s|ann|bob", "1"); ("s|ann|cat", "1"); ("s|dee|bob", "1");
      ("p|bob|0000000100", "hello"); ("p|bob|0000000300", "again");
      ("p|cat|0000000200", "meow") ]

let timeline s user =
  Server.scan s ~lo:(Printf.sprintf "t|%s|" user) ~hi:(Strkey.prefix_upper (Printf.sprintf "t|%s|" user))

let expected_ann =
  [ ("t|ann|0000000100|bob", "hello"); ("t|ann|0000000200|cat", "meow");
    ("t|ann|0000000300|bob", "again") ]

(* CRC-32 check vector (IEEE: crc of "123456789" is 0xCBF43926). *)
let test_crc32 () =
  check_bool "check vector" true (Crc32.string "123456789" = 0xCBF43926l);
  check_bool "empty" true (Crc32.string "" = 0l);
  let buf = Buffer.create 4 in
  Crc32.add_be buf 0xCBF43926l;
  check_bool "be roundtrip" true (Crc32.get_be (Buffer.contents buf) 0 = 0xCBF43926l)

let test_record_roundtrip () =
  let payloads = [ "alpha"; ""; String.make 5000 'x'; "\x00\xfe\x01" ] in
  let wire = String.concat "" (List.map Record.encode payloads) in
  let got, ending = Record.read_all wire in
  check_bool "payloads" true (got = payloads);
  check_bool "clean" true (ending = Record.Clean);
  (* torn: drop the last byte *)
  let got, ending = Record.read_all (String.sub wire 0 (String.length wire - 1)) in
  check_bool "torn payloads" true (got = [ "alpha"; ""; String.make 5000 'x' ]);
  check_bool "torn" true (ending = Record.Torn);
  (* corrupt: flip one payload byte of the third record *)
  let b = Bytes.of_string wire in
  let off = String.length (Record.encode "alpha") + String.length (Record.encode "") + 8 + 17 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0x40));
  let got, ending = Record.read_all (Bytes.to_string b) in
  check_bool "prefix survives corruption" true (got = [ "alpha"; "" ]);
  check_bool "corrupt" true (ending = Record.Corrupt)

(* Populate, stop, restart: the warm restart must serve identical scans
   from the log alone (no snapshot was ever taken). *)
let test_wal_replay () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  populate s;
  check_bool "warm timeline" true (timeline s "ann" = expected_ann);
  Server.remove s "p|cat|0000000200";
  Persist.close p;
  let s2, p2 = durable_server dir in
  check_bool "join recovered" true (Server.join_texts s2 <> []);
  check_bool "timeline after restart" true
    (timeline s2 "ann"
    = [ ("t|ann|0000000100|bob", "hello"); ("t|ann|0000000300|bob", "again") ]);
  check_bool "dee timeline" true
    (timeline s2 "dee"
    = [ ("t|dee|0000000100|bob", "hello"); ("t|dee|0000000300|bob", "again") ]);
  Server.validate s2;
  Persist.close p2

(* Snapshot mid-stream, then more writes: recovery = snapshot + log tail. *)
let test_snapshot_plus_tail () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  populate s;
  Persist.snapshot_now p;
  Server.put s "p|bob|0000000400" "tail";
  Server.put s "s|ann|eve" "1";
  Persist.close p;
  let s2, p2 = durable_server dir in
  check_bool "restored from snapshot" true
    (List.mem_assoc "persist.snapshot_seq" (Persist.stats p2)
    && List.assoc "persist.snapshot_seq" (Persist.stats p2) > 0);
  check_bool "tail replayed" true (List.assoc "persist.replayed" (Persist.stats p2) = 2);
  check_bool "timeline" true
    (timeline s2 "ann" = expected_ann @ [ ("t|ann|0000000400|bob", "tail") ]);
  Persist.close p2

(* The snapshot must not contain sink-table (join output) pairs: they are
   recomputed lazily after recovery. *)
let test_snapshot_skips_sinks () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  populate s;
  ignore (timeline s "ann") (* materialize t| *);
  Persist.snapshot_now p;
  Persist.close p;
  let snap =
    List.find_map
      (fun n ->
        if Snapshot.parse_file_name n <> None then Some (Filename.concat dir n) else None)
      (Array.to_list (Sys.readdir dir))
  in
  match Snapshot.load (Option.get snap) with
  | Error msg -> Alcotest.fail msg
  | Ok c ->
    check_int "base pairs only" 6 (List.length c.Snapshot.pairs);
    check_bool "no t| keys" true
      (List.for_all (fun (k, _) -> not (String.length k > 0 && k.[0] = 't')) c.Snapshot.pairs);
    check_int "one join" 1 (List.length c.Snapshot.joins)

(* Crash mid-append: the log tail is truncated inside the final record.
   Recovery keeps everything up to the last durable record. *)
let test_torn_tail () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  populate s;
  Server.put s "p|bob|0000000500" "doomed";
  Persist.close p;
  (* tear the final record: chop 3 bytes off the newest log file *)
  let wal =
    List.filter_map
      (fun n -> Option.map (fun seq -> (seq, Filename.concat dir n)) (Wal.parse_file_name n))
      (Array.to_list (Sys.readdir dir))
    |> List.sort compare |> List.rev |> List.hd |> snd
  in
  let size = (Unix.stat wal).Unix.st_size in
  Unix.truncate wal (size - 3);
  let s2, p2 = durable_server dir in
  check_bool "tail loss detected" true (List.assoc "persist.tail_lost" (Persist.stats p2) = 1);
  check_bool "doomed record gone" true (Server.get s2 "p|bob|0000000500" = None);
  check_bool "earlier data intact" true (timeline s2 "ann" = expected_ann);
  (* the replacement log starts past the torn one; new writes are durable *)
  Server.put s2 "p|bob|0000000600" "recovered";
  Persist.close p2;
  let s3, p3 = durable_server dir in
  check_bool "post-recovery write survives" true
    (Server.get s3 "p|bob|0000000600" = Some "recovered");
  Persist.close p3

(* Bit rot inside an earlier record: replay stops at the corruption (the
   durable horizon) but serves everything before it. *)
let test_corrupt_record () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  Server.put s "b|one" "1";
  Server.put s "b|two" "2";
  Server.put s "b|three" "3";
  Persist.close p;
  let wal =
    List.find_map
      (fun n ->
        if Wal.parse_file_name n <> None then Some (Filename.concat dir n) else None)
      (Array.to_list (Sys.readdir dir))
    |> Option.get
  in
  (* flip a byte inside the second record's payload: each record is
     4 (frame) + 4 (crc) + payload; record 1's payload is 12 bytes *)
  let r1 = String.length (Record.encode (Wal.encode_entry ~seq:1 (Wal.Put ("b|one", "1")))) in
  let fd = Unix.openfile wal [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd (r1 + 10) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xff") 0 1);
  Unix.close fd;
  let s2, p2 = durable_server dir in
  check_bool "first record survives" true (Server.get s2 "b|one" = Some "1");
  check_bool "corrupt record dropped" true (Server.get s2 "b|two" = None);
  check_bool "records past corruption dropped" true (Server.get s2 "b|three" = None);
  check_bool "tail loss detected" true (List.assoc "persist.tail_lost" (Persist.stats p2) = 1);
  Persist.close p2

(* A corrupt newest snapshot must not lose data: recovery falls back to
   the older retained snapshot and replays the full log tail from there. *)
let test_stale_snapshot_newer_log () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  populate s;
  Persist.snapshot_now p;
  Server.put s "p|bob|0000000400" "after-snap1";
  Persist.snapshot_now p;
  Server.put s "p|bob|0000000500" "after-snap2";
  Persist.close p;
  (* corrupt the newest snapshot *)
  let newest_snap =
    List.filter_map
      (fun n ->
        Option.map (fun seq -> (seq, Filename.concat dir n)) (Snapshot.parse_file_name n))
      (Array.to_list (Sys.readdir dir))
    |> List.sort compare |> List.rev |> List.hd |> snd
  in
  let fd = Unix.openfile newest_snap [ Unix.O_RDWR ] 0 in
  ignore (Unix.lseek fd 30 Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.of_string "\xde\xad") 0 2);
  Unix.close fd;
  let s2, p2 = durable_server dir in
  check_bool "older snapshot used" true
    (List.assoc "persist.snapshot_seq" (Persist.stats p2) > 0);
  check_bool "all data recovered" true
    (timeline s2 "ann"
    = expected_ann
      @ [ ("t|ann|0000000400|bob", "after-snap1"); ("t|ann|0000000500|bob", "after-snap2") ]);
  Persist.close p2

(* Automatic snapshots + rotation: old logs and old snapshots are
   compacted away, at most two snapshots remain, and recovery is exact. *)
let test_rotation_compaction () =
  let dir = fresh_dir () in
  let s, p = durable_server ~snapshot_every:25 dir in
  for i = 1 to 130 do
    Server.put s (Printf.sprintf "b|%04d" i) (string_of_int i)
  done;
  Persist.close p;
  let snaps = List.filter (fun n -> Snapshot.parse_file_name n <> None)
      (Array.to_list (Sys.readdir dir)) in
  let wals = List.filter (fun n -> Wal.parse_file_name n <> None)
      (Array.to_list (Sys.readdir dir)) in
  check_bool "snapshots taken" true (List.length snaps >= 1);
  check_bool "at most two snapshots retained" true (List.length snaps <= 2);
  check_bool "old logs compacted" true (List.length wals <= 3);
  let s2, p2 = durable_server dir in
  check_int "all pairs recovered" 130 (Server.size s2);
  check_bool "spot check" true (Server.get s2 "b|0007" = Some "7");
  Server.validate s2;
  Persist.close p2

(* Version stamps are durable (snapshot v2): a stamp acked to a session
   before the crash is still satisfied after recovery, whether it was
   covered by the snapshot or only by replayed log records. *)
let test_stamps_survive_recovery () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  Server.put s "b|one" "1";
  Server.put s "b|two" "2";
  Persist.snapshot_now p;
  Server.put s "b|three" "3";
  (* the stamp a session would have accumulated from its write acks *)
  let acked = Server.stamps_for_keys s [ "b|three" ] in
  check_bool "ack stamped" true (acked <> []);
  Persist.close p;
  let s2, p2 = durable_server dir in
  check_bool "acked stamp satisfied after recovery" true
    (List.for_all
       (fun (table, lo, hi, stamp) -> Server.range_stamp s2 ~table ~lo ~hi >= stamp)
       acked);
  check_bool "stamped read would not block" true
    (Server.stamp_unsatisfied s2 acked = []);
  (* new writes keep the counter moving past the recovered level *)
  let before = Server.range_stamp s2 ~table:"b" ~lo:"b|" ~hi:"b}" in
  Server.put s2 "b|four" "4";
  check_bool "stamps advance after recovery" true
    (Server.range_stamp s2 ~table:"b" ~lo:"b|" ~hi:"b}" > before);
  Persist.close p2

(* Size-based rotation: a tiny wal-max-bytes forces snapshot+rotate. *)
let test_size_rotation () =
  let dir = fresh_dir () in
  let s, p = durable_server ~wal_max_bytes:512 dir in
  for i = 1 to 60 do
    Server.put s (Printf.sprintf "b|%04d" i) (String.make 40 'v')
  done;
  check_bool "rotated" true (List.assoc "persist.snapshots" (Persist.stats p) >= 1);
  Persist.close p;
  let s2, p2 = durable_server dir in
  check_int "all pairs recovered" 60 (Server.size s2);
  Persist.close p2

(* Resolver bookkeeping: presence of resolver-fetched ranges is NOT
   durable. A restarted server no longer holds the subscription that
   kept the fetched copy fresh, so recovery leaves the range missing
   and the first scan refetches — serving the backing store's current
   contents, never a frozen pre-crash copy. *)
let test_refetch_after_recovery () =
  let dir = fresh_dir () in
  let fetches = ref 0 in
  let backing ~table ~lo:_ ~hi:_ =
    if table = "p" then begin
      incr fetches;
      Server.Resolved [ ("p|bob|0000000100", "hello"); ("p|bob|0000000200", "world") ]
    end
    else Server.Local
  in
  let s, p = durable_server dir in
  Server.set_resolver s backing;
  Server.add_join_exn s timeline_join;
  Server.put s "s|ann|bob" "1";
  let expect =
    [ ("t|ann|0000000100|bob", "hello"); ("t|ann|0000000200|bob", "world") ]
  in
  check_bool "cold scan" true (timeline s "ann" = expect);
  check_int "one backing fetch" 1 !fetches;
  Persist.close p;
  let s2, p2 = durable_server dir in
  let refetches = ref 0 in
  (* the backing store moved on while this server was down: the scan
     after restart must reflect that, not the pre-crash fetch *)
  Server.set_resolver s2 (fun ~table ~lo:_ ~hi:_ ->
      if table = "p" then begin
        incr refetches;
        Server.Resolved [ ("p|bob|0000000100", "fresh") ]
      end
      else Server.Local);
  check_bool "warm scan refetches current data" true
    (timeline s2 "ann" = [ ("t|ann|0000000100|bob", "fresh") ]);
  check_bool "resolver consulted after restart" true (!refetches >= 1);
  Persist.close p2

(* Home ownership IS durable: mark_present ranges survive a restart, so
   a recovered home keeps serving its partitions without a resolver. *)
let test_ownership_survives_recovery () =
  let dir = fresh_dir () in
  let s, p = durable_server dir in
  Server.add_join_exn s timeline_join;
  Server.mark_present s ~table:"p" ~lo:"p|" ~hi:"p}";
  Server.put s "s|ann|bob" "1";
  Server.put s "p|bob|0000000100" "hello";
  Persist.close p;
  let s2, p2 = durable_server dir in
  check_bool "owned range recovered" true
    (List.mem ("p", "p|", "p}") (Server.present_ranges s2));
  let consulted = ref 0 in
  Server.set_resolver s2 (fun ~table ~lo:_ ~hi:_ ->
      if table = "p" then incr consulted;
      Server.Local);
  check_bool "owned scan" true
    (timeline s2 "ann" = [ ("t|ann|0000000100|bob", "hello") ]);
  check_int "no resolver call for the owned source" 0 !consulted;
  Persist.close p2

(* The CLI-configured join must not be installed twice when it was
   already recovered from the data directory (Net_server dedup). *)
let test_net_server_join_dedup () =
  let dir = fresh_dir () in
  let mk () =
    let config = Config.default () in
    config.Config.persist <- Some (persist_cfg dir);
    Pequod_server_lib.Net_server.create ~config ~port:0 ~joins:[ timeline_join ]
      ~memory_limit:None ()
  in
  let t = mk () in
  let e = Pequod_server_lib.Net_server.engine t in
  Server.put e "s|ann|bob" "1";
  Server.put e "p|bob|0000000100" "hi";
  check_int "one join" 1 (List.length (Server.joins e));
  Pequod_server_lib.Net_server.stop t;
  let t2 = mk () in
  let e2 = Pequod_server_lib.Net_server.engine t2 in
  check_int "still one join after restart" 1 (List.length (Server.joins e2));
  check_bool "data recovered" true
    (timeline e2 "ann" = [ ("t|ann|0000000100|bob", "hi") ]);
  Pequod_server_lib.Net_server.stop t2

let () =
  Alcotest.run "persist"
    [
      ( "record",
        [
          Alcotest.test_case "crc32" `Quick test_crc32;
          Alcotest.test_case "framing roundtrip + faults" `Quick test_record_roundtrip;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "wal replay" `Quick test_wal_replay;
          Alcotest.test_case "snapshot + log tail" `Quick test_snapshot_plus_tail;
          Alcotest.test_case "snapshot skips sink tables" `Quick test_snapshot_skips_sinks;
          Alcotest.test_case "fetched ranges refetch after recovery" `Quick
            test_refetch_after_recovery;
          Alcotest.test_case "owned ranges survive recovery" `Quick
            test_ownership_survives_recovery;
          Alcotest.test_case "stamps survive recovery" `Quick
            test_stamps_survive_recovery;
        ] );
      ( "faults",
        [
          Alcotest.test_case "torn tail" `Quick test_torn_tail;
          Alcotest.test_case "corrupt record" `Quick test_corrupt_record;
          Alcotest.test_case "stale snapshot + newer log" `Quick
            test_stale_snapshot_newer_log;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "snapshot-every compaction" `Quick test_rotation_compaction;
          Alcotest.test_case "size rotation" `Quick test_size_rotation;
        ] );
      ("net", [ Alcotest.test_case "join dedup on restart" `Quick test_net_server_join_dedup ]);
    ]
