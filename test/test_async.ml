(* The asynchronous remote read path (Remote.attach ~server): parked
   scans, fan-out fetch batching, and single-flight coalescing, driven
   over real TCP sockets in one process with manually-stepped event
   loops — a home server and a compute server whose scans miss. *)

module Net_server = Pequod_server_lib.Net_server
module Remote = Pequod_server_lib.Remote
module Server = Pequod_core.Server
module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame
(* Rng comes unwrapped from pequod_util *)

let check_bool = Alcotest.(check bool)

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let with_server ~joins f =
  let t = Net_server.create ~port:0 ~joins ~memory_limit:None () in
  Fun.protect ~finally:(fun () -> Net_server.stop t) (fun () -> f t)

let addr_of t = Printf.sprintf "127.0.0.1:%d" (Net_server.port t)

let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Net_server.port t));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  fd

let write_all fd s =
  let sent = ref 0 in
  while !sent < String.length s do
    sent := !sent + Unix.write_substring fd s !sent (String.length s - !sent)
  done

(* write [reqs] as one pipelined burst, then step every server in
   [servers] until the same number of raw response frames arrived *)
let pipeline_raw ~servers fd reqs =
  write_all fd
    (String.concat "" (List.map (fun r -> Frame.encode (Message.encode_request r)) reqs));
  let want = List.length reqs in
  let decoder = Frame.decoder () in
  let buf = Bytes.create 65536 in
  let frames = ref [] in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while List.length !frames < want do
    if Unix.gettimeofday () > deadline then failwith "pipeline_raw timeout";
    List.iter (fun t -> Net_server.step ~timeout:0.002 t) servers;
    match Unix.select [ fd ] [] [] 0.002 with
    | [ _ ], _, _ ->
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n = 0 then failwith "connection closed";
      frames := !frames @ Frame.feed decoder (Bytes.sub_string buf 0 n)
    | _ -> ()
  done;
  !frames

let rpc ~servers fd req =
  match pipeline_raw ~servers fd [ req ] with
  | [ frame ] -> Message.decode_response frame
  | _ -> assert false

(* let in-flight pushes / fetch completions drain *)
let settle servers =
  for _ = 1 to 10 do
    List.iter (fun t -> Net_server.step ~timeout:0.001 t) servers
  done

let counter t name = Server.counter (Net_server.engine t) name

(* N pipelined scans of the same cold timeline must cost exactly one
   wire Fetch per distinct missing source range: the first parked scan
   issues each fetch, the other N-1 join the in-flight entry
   ([fetch.coalesced]), and every response is identical. The timeline
   join misses in two waves -- the check source (s|) first, then, once
   its feed names the poster, the copy source (p|) -- so each of the
   two ranges is single-flighted across all N waiters. *)
let test_single_flight () =
  with_server ~joins:[] @@ fun home ->
  with_server ~joins:[ timeline_join ] @@ fun compute ->
  let h = Net_server.engine home in
  Server.mark_present h ~table:"s" ~lo:"s|" ~hi:"s}";
  Server.mark_present h ~table:"p" ~lo:"p|" ~hi:"p}";
  Server.put h "s|ann|bob" "1";
  Server.put h "p|bob|0000000007" "hello";
  let routes =
    match Remote.routes_of_specs ~peers:[ addr_of home ] [ "s"; "p" ] with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let _heal =
    Remote.attach
      (Remote.Config.make ~server:compute ~engine:(Net_server.engine compute)
         ~self_addr:(addr_of compute) (Remote.Config.Static routes))
  in
  let fd = connect compute in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let n = 5 in
  let servers = [ compute; home ] in
  let frames =
    pipeline_raw ~servers fd
      (List.init n (fun _ -> Message.Scan { lo = "t|ann|"; hi = "t|ann}" }))
  in
  let expected = Message.Pairs [ ("t|ann|0000000007|bob", "hello") ] in
  List.iteri
    (fun i frame ->
      check_bool (Printf.sprintf "response %d" i) true
        (Message.decode_response frame = expected))
    frames;
  (* two distinct missing ranges (s|ann, then p|bob), each fetched
     over the wire exactly once on behalf of all five waiters *)
  check_bool "one wire fetch per range" true (counter home "peer.fetch.in" = 2);
  check_bool "coalesced joins" true (counter compute "fetch.coalesced" = 2 * (n - 1));
  check_bool "all scans parked" true (counter compute "scan.parked" = n)

(* A parked scan whose home is unreachable answers Error without
   wedging the connection: requests pipelined behind it still answer,
   in order, and the connection stays usable afterwards. The timeline
   join's check source (s|) is routed to an address nothing listens on,
   so the scan parks and its burst fetch fails fast. *)
let test_park_failure () =
  with_server ~joins:[ timeline_join ] @@ fun compute ->
  (* port 9 on loopback: nothing listens; connect is refused at once *)
  let routes =
    match
      Remote.routes_of_specs ~peers:[]
        [ "s@127.0.0.1:9"; "p@127.0.0.1:9" ]
    with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let _heal =
    Remote.attach
      (Remote.Config.make ~server:compute ~engine:(Net_server.engine compute)
         ~self_addr:(addr_of compute) (Remote.Config.Static routes))
  in
  let fd = connect compute in
  Fun.protect ~finally:(fun () -> Unix.close fd) @@ fun () ->
  let servers = [ compute ] in
  (match
     List.map Message.decode_response
       (pipeline_raw ~servers fd
          [ Message.Scan { lo = "t|ann|"; hi = "t|ann}" };
            Message.Put ("other|k", "1");
            Message.Get "other|k" ])
   with
  | [ Message.Error _; (Message.Done | Message.Stamps _); Message.Value (Some "1") ] -> ()
  | rs ->
    Alcotest.failf "expected [Error; Done; Value], got %d responses: %s"
      (List.length rs)
      (String.concat ", "
         (List.map
            (function
              | Message.Error _ -> "Error"
              | Message.Done -> "Done"
              | Message.Stamps _ -> "Stamps"
              | Message.Value _ -> "Value"
              | Message.Pairs _ -> "Pairs"
              | _ -> "?")
            rs)));
  check_bool "failed scan parked" true (counter compute "scan.parked" >= 1)

(* ------------------------------------------------------------------ *)
(* async == sync equivalence                                           *)

let users = [| "ann"; "bob"; "cat"; "dan"; "eve" |]

(* One random interleaving of home writes and compute timeline reads,
   identical for both modes at the same seed: returns the raw wire
   response frames of every compute request, in order. *)
let run_transcript ~async seed =
  with_server ~joins:[] @@ fun home ->
  with_server ~joins:[ timeline_join ] @@ fun compute ->
  let h = Net_server.engine home in
  Server.mark_present h ~table:"s" ~lo:"s|" ~hi:"s}";
  Server.mark_present h ~table:"p" ~lo:"p|" ~hi:"p}";
  let routes =
    match Remote.routes_of_specs ~peers:[ addr_of home ] [ "s"; "p" ] with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let servers = [ compute; home ] in
  let on_wait () = Net_server.step ~timeout:0.001 home in
  let _heal =
    if async then
      Remote.attach
        (Remote.Config.make ~server:compute ~on_wait
           ~engine:(Net_server.engine compute) ~self_addr:(addr_of compute)
           (Remote.Config.Static routes))
    else
      Remote.attach
        (Remote.Config.make ~on_wait ~engine:(Net_server.engine compute)
           ~self_addr:(addr_of compute) (Remote.Config.Static routes))
  in
  let hfd = connect home in
  let cfd = connect compute in
  Fun.protect
    ~finally:(fun () ->
      Unix.close hfd;
      Unix.close cfd)
  @@ fun () ->
  let rng = Rng.create seed in
  let transcript = ref [] in
  let read_compute reqs =
    transcript := !transcript @ pipeline_raw ~servers cfd reqs
  in
  for _ = 1 to 40 do
    match Rng.int rng 100 with
    | n when n < 25 ->
      let k = Printf.sprintf "s|%s|%s" (Rng.pick rng users) (Rng.pick rng users) in
      ignore (rpc ~servers hfd (Message.Put (k, "1")));
      settle servers
    | n when n < 45 ->
      let k =
        Printf.sprintf "p|%s|%010d" (Rng.pick rng users) (Rng.int rng 50)
      in
      ignore (rpc ~servers hfd (Message.Put (k, Printf.sprintf "m%d" (Rng.int rng 10))));
      settle servers
    | n when n < 55 ->
      let k = Printf.sprintf "s|%s|%s" (Rng.pick rng users) (Rng.pick rng users) in
      ignore (rpc ~servers hfd (Message.Remove k));
      settle servers
    | n when n < 80 ->
      let u = Rng.pick rng users in
      read_compute [ Message.Scan { lo = "t|" ^ u ^ "|"; hi = "t|" ^ u ^ "}" } ]
    | _ ->
      (* a pipelined burst of reads over several users: different
         parked scans in flight at once *)
      read_compute
        (List.init 3 (fun _ ->
             let u = Rng.pick rng users in
             Message.Scan { lo = "t|" ^ u ^ "|"; hi = "t|" ^ u ^ "}" }))
  done;
  (* final whole-table read *)
  read_compute [ Message.Scan { lo = "t|"; hi = "t}" } ];
  !transcript

let test_equivalence () =
  List.iter
    (fun seed ->
      let sync_t = run_transcript ~async:false seed in
      let async_t = run_transcript ~async:true seed in
      check_bool
        (Printf.sprintf "seed %d: same transcript length" seed)
        true
        (List.length sync_t = List.length async_t);
      List.iteri
        (fun i (s, a) ->
          if not (String.equal s a) then
            Alcotest.failf "seed %d: response %d differs between sync and async" seed i)
        (List.combine sync_t async_t))
    [ 1; 7; 42; 1234 ]

let () =
  Alcotest.run "async"
    [
      ( "async-read-path",
        [
          Alcotest.test_case "single-flight coalescing" `Quick test_single_flight;
          Alcotest.test_case "parked failure keeps order" `Quick test_park_failure;
          Alcotest.test_case "sync == async transcripts" `Quick test_equivalence;
        ] );
    ]
