(* Integration tests for the network server: the select event loop is
   driven manually with step(), with real TCP sockets in one process. *)

module Net_server = Pequod_server_lib.Net_server
module Net_client = Pequod_server_lib.Net_client
module Remote = Pequod_server_lib.Remote
module Server = Pequod_core.Server
module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame

let check_bool = Alcotest.(check bool)

(* v3 write acks carry a stamp vector instead of a bare Done *)
let is_ack = function Message.Stamps _ | Message.Done -> true | _ -> false

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let with_server ~joins f =
  let t = Net_server.create ~port:0 ~joins ~memory_limit:None () in
  Fun.protect ~finally:(fun () -> Net_server.stop t) (fun () -> f t)

let connect t =
  let port = Net_server.port t in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* send a request, pump the server loop, read the response *)
let rpc t fd req =
  let wire = Frame.encode (Message.encode_request req) in
  let sent = ref 0 in
  while !sent < String.length wire do
    sent := !sent + Unix.write_substring fd wire !sent (String.length wire - !sent)
  done;
  let decoder = Frame.decoder () in
  let buf = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec read_frame () =
    if Unix.gettimeofday () > deadline then failwith "rpc timeout";
    Net_server.step ~timeout:0.01 t;
    match Unix.select [ fd ] [] [] 0.01 with
    | [ _ ], _, _ -> (
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n = 0 then failwith "connection closed";
      match Frame.feed decoder (Bytes.sub_string buf 0 n) with
      | frame :: _ -> Message.decode_response frame
      | [] -> read_frame ())
    | _ -> read_frame ()
  in
  read_frame ()

let test_basic_session () =
  with_server ~joins:[ timeline_join ] (fun t ->
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (match rpc t fd (Message.Hello { version = Message.protocol_version }) with
          | Message.Welcome { version } when version = Message.protocol_version -> ()
          | _ -> Alcotest.fail "handshake over TCP");
          (match rpc t fd (Message.Hello { version = Message.protocol_version + 7 }) with
          | Message.Error _ -> ()
          | _ -> Alcotest.fail "version mismatch accepted over TCP");
          check_bool "put sub" true (is_ack (rpc t fd (Message.Put ("s|ann|bob", "1"))));
          check_bool "put post" true
            (is_ack (rpc t fd (Message.Put ("p|bob|0000000100", "hi"))));
          (match rpc t fd (Message.Scan { lo = "t|ann|"; hi = "t|ann}" }) with
          | Message.Pairs [ ("t|ann|0000000100|bob", "hi") ] -> ()
          | _ -> Alcotest.fail "timeline over TCP");
          (match rpc t fd (Message.Get "t|ann|0000000100|bob") with
          | Message.Value (Some "hi") -> ()
          | _ -> Alcotest.fail "get over TCP");
          match rpc t fd Message.Stats_full with
          | Message.Metrics metrics -> check_bool "metrics" true (metrics <> [])
          | _ -> Alcotest.fail "stats_full over TCP"))

(* One-way requests produce no response frame: a Notify_put followed by a
   Get must answer the Get first (and only) — the notify is applied, not
   acknowledged. *)
let test_oneway_notify () =
  with_server ~joins:[] (fun t ->
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let wire =
            Frame.encode (Message.encode_request (Message.Notify_put ("k|a", "pushed")))
            ^ Frame.encode (Message.encode_request (Message.Get "k|a"))
          in
          let sent = ref 0 in
          while !sent < String.length wire do
            sent := !sent + Unix.write_substring fd wire !sent (String.length wire - !sent)
          done;
          let decoder = Frame.decoder () in
          let buf = Bytes.create 4096 in
          let deadline = Unix.gettimeofday () +. 5.0 in
          let responses = ref [] in
          while !responses = [] do
            if Unix.gettimeofday () > deadline then failwith "timeout";
            Net_server.step ~timeout:0.01 t;
            match Unix.select [ fd ] [] [] 0.01 with
            | [ _ ], _, _ ->
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              if n = 0 then failwith "connection closed";
              List.iter
                (fun frame -> responses := Message.decode_response frame :: !responses)
                (Frame.feed decoder (Bytes.sub_string buf 0 n))
            | _ -> ()
          done;
          match List.rev !responses with
          | [ Message.Value (Some "pushed") ] -> ()
          | _ -> Alcotest.fail "notify must be one-way and applied before the get"))

let test_runtime_join_installation () =
  with_server ~joins:[] (fun t ->
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          check_bool "add join" true
            (rpc t fd (Message.Add_join "m|<x> = copy src|<x>") = Message.Done);
          (match rpc t fd (Message.Add_join "nonsense") with
          | Message.Error _ -> ()
          | _ -> Alcotest.fail "bad join accepted");
          check_bool "put" true (is_ack (rpc t fd (Message.Put ("src|a", "v"))));
          match rpc t fd (Message.Get "m|a") with
          | Message.Value (Some "v") -> ()
          | _ -> Alcotest.fail "runtime join not applied"))

let test_two_clients () =
  with_server ~joins:[ timeline_join ] (fun t ->
      let fd1 = connect t in
      let fd2 = connect t in
      Fun.protect
        ~finally:(fun () ->
          Unix.close fd1;
          Unix.close fd2)
        (fun () ->
          check_bool "c1 put" true (is_ack (rpc t fd1 (Message.Put ("s|ann|bob", "1"))));
          check_bool "c2 put" true
            (is_ack (rpc t fd2 (Message.Put ("p|bob|0000000001", "x"))));
          (* each client sees the other's writes *)
          match rpc t fd1 (Message.Scan { lo = "t|ann|"; hi = "t|ann}" }) with
          | Message.Pairs [ ("t|ann|0000000001|bob", "x") ] -> ()
          | _ -> Alcotest.fail "cross-client visibility"))

let test_garbage_input () =
  with_server ~joins:[] (fun t ->
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* a valid frame holding an invalid message must produce an error
             response, not kill the server *)
          let wire = Frame.encode "\xff\xff\xff" in
          ignore (Unix.write_substring fd wire 0 (String.length wire));
          let decoder = Frame.decoder () in
          let buf = Bytes.create 4096 in
          let deadline = Unix.gettimeofday () +. 5.0 in
          let rec read_frame () =
            if Unix.gettimeofday () > deadline then failwith "timeout";
            Net_server.step ~timeout:0.01 t;
            match Unix.select [ fd ] [] [] 0.01 with
            | [ _ ], _, _ -> (
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              match Frame.feed decoder (Bytes.sub_string buf 0 n) with
              | frame :: _ -> Message.decode_response frame
              | [] -> read_frame ())
            | _ -> read_frame ()
          in
          (match read_frame () with
          | Message.Error _ -> ()
          | _ -> Alcotest.fail "expected protocol error");
          (* and the connection still works afterwards *)
          check_bool "still alive" true (is_ack (rpc t fd (Message.Put ("k|a", "v"))))))

let test_put_batch_pipelined () =
  with_server ~joins:[ timeline_join ] (fun t ->
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* two batch frames written back-to-back: the server answers both
             from one read with one buffered write, and the batch's puts
             fire the timeline updater like sequential puts would *)
          let reqs =
            [
              Message.Put_batch [ ("s|ann|bob", "1"); ("p|bob|0000000200", "b") ];
              Message.Put_batch [ ("p|bob|0000000100", "a") ];
            ]
          in
          let wire =
            String.concat "" (List.map (fun r -> Frame.encode (Message.encode_request r)) reqs)
          in
          let sent = ref 0 in
          while !sent < String.length wire do
            sent := !sent + Unix.write_substring fd wire !sent (String.length wire - !sent)
          done;
          let decoder = Frame.decoder () in
          let buf = Bytes.create 65536 in
          let deadline = Unix.gettimeofday () +. 5.0 in
          let responses = ref [] in
          while List.length !responses < 2 do
            if Unix.gettimeofday () > deadline then failwith "pipeline timeout";
            Net_server.step ~timeout:0.01 t;
            match Unix.select [ fd ] [] [] 0.01 with
            | [ _ ], _, _ ->
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              if n = 0 then failwith "connection closed";
              List.iter
                (fun frame -> responses := Message.decode_response frame :: !responses)
                (Frame.feed decoder (Bytes.sub_string buf 0 n))
            | _ -> ()
          done;
          check_bool "both batches acknowledged" true (List.for_all is_ack !responses);
          match rpc t fd (Message.Scan { lo = "t|ann|"; hi = "t|ann}" }) with
          | Message.Pairs [ ("t|ann|0000000100|bob", "a"); ("t|ann|0000000200|bob", "b") ] -> ()
          | _ -> Alcotest.fail "timeline after pipelined batches"))

(* A push-mode client (handshake:false) never blocks on the Welcome:
   its posts are applied while call/pipeline are rejected outright. The
   server's own notification pushes rely on this to stay deadlock-free. *)
let test_push_mode_client () =
  with_server ~joins:[] (fun t ->
      let client =
        Net_client.create ~handshake:false ~host:"127.0.0.1" ~port:(Net_server.port t) ()
      in
      Fun.protect
        ~finally:(fun () -> Net_client.close client)
        (fun () ->
          (match Net_client.call client (Message.Get "k|a") with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "call on a push-mode client must be rejected");
          (match Net_client.pipeline client [ Message.Get "k|a" ] with
          | exception Invalid_argument _ -> ()
          | _ -> Alcotest.fail "pipeline on a push-mode client must be rejected");
          let posted k v =
            Net_client.post client (Message.Notify_put (k, v));
            let deadline = Unix.gettimeofday () +. 5.0 in
            while Server.get (Net_server.engine t) k <> Some v do
              if Unix.gettimeofday () > deadline then Alcotest.failf "push of %s not applied" k;
              Net_server.step ~timeout:0.01 t
            done
          in
          posted "k|a" "pushed";
          (* the second post opportunistically drains the buffered
             Welcome; the connection keeps working *)
          posted "k|b" "again"))

(* Refetching the same range as the same subscriber must reuse the live
   subscription entry, not stack a duplicate (finding: unbounded subs
   growth under eviction-driven refetch). Sub_check reports the table. *)
let test_fetch_dedup () =
  with_server ~joins:[] (fun t ->
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* populate before subscribing: later writes in the range would
             trigger a real push to the (unreachable) subscriber address *)
          check_bool "seed put" true (is_ack (rpc t fd (Message.Put ("p|a|1", "v"))));
          let fetch () =
            rpc t fd (Message.Fetch { table = "p"; lo = "p|"; hi = "p}"; subscriber = "198.51.100.9:9" })
          in
          (match fetch () with
          | Message.Subscribed { pairs = [ ("p|a|1", "v") ]; _ } -> ()
          | _ -> Alcotest.fail "first fetch");
          (match fetch () with
          | Message.Subscribed { pairs = [ ("p|a|1", "v") ]; _ } -> ()
          | _ -> Alcotest.fail "refetch");
          (match rpc t fd (Message.Sub_check { subscriber = "198.51.100.9:9" }) with
          | Message.Sub_ranges [ ("p", "p|", "p}") ] -> ()
          | Message.Sub_ranges ranges ->
            Alcotest.failf "expected one deduplicated subscription, got %d" (List.length ranges)
          | _ -> Alcotest.fail "sub_check response");
          (* an anonymous fetch (empty subscriber) installs nothing *)
          (match rpc t fd (Message.Fetch { table = "p"; lo = "p|"; hi = "p}"; subscriber = "" }) with
          | Message.Subscribed _ -> ()
          | _ -> Alcotest.fail "anonymous fetch");
          match rpc t fd (Message.Sub_check { subscriber = "" }) with
          | Message.Sub_ranges [] -> ()
          | _ -> Alcotest.fail "anonymous fetch must not subscribe"))

(* Route-coverage planning: unrouted tables stay local, partial route
   coverage is a surfaced gap (never silently present-and-empty), and
   fetch clamps carry only the remotely-owned intersections. *)
let test_remote_plan () =
  let route table lo hi addr = { Remote.r_table = table; r_lo = lo; r_hi = hi; r_addr = addr } in
  let split =
    [ route "p" "p|" "p|m" (Some "h1:1"); route "p" "p|m" "p}" (Some "h2:1") ]
  in
  (match Remote.plan ~routes:split ~table:"q" ~lo:"q|" ~hi:"q}" with
  | `Unrouted -> ()
  | _ -> Alcotest.fail "unrouted table");
  (match Remote.plan ~routes:split ~table:"p" ~lo:"p|a" ~hi:"p|z" with
  | `Fetch [ (r1, "p|a", "p|m"); (r2, "p|m", "p|z") ]
    when r1.Remote.r_addr = Some "h1:1" && r2.Remote.r_addr = Some "h2:1" ->
    ()
  | _ -> Alcotest.fail "split fetch clamps");
  let gappy = [ route "p" "p|" "p|m" (Some "h1:1"); route "p" "p|n" "p}" (Some "h2:1") ] in
  (match Remote.plan ~routes:gappy ~table:"p" ~lo:"p|a" ~hi:"p|z" with
  | `Gap -> ()
  | _ -> Alcotest.fail "uncovered middle must be a gap");
  (match Remote.plan ~routes:gappy ~table:"p" ~lo:"p|a" ~hi:"p|b" with
  | `Fetch [ (_, "p|a", "p|b") ] -> ()
  | _ -> Alcotest.fail "fully covered prefix");
  (* a locally-owned route covers its part but yields no clamp *)
  let mixed = [ route "p" "p|" "p|m" None; route "p" "p|m" "p}" (Some "h2:1") ] in
  match Remote.plan ~routes:mixed ~table:"p" ~lo:"p|a" ~hi:"p|z" with
  | `Fetch [ (r, "p|m", "p|z") ] when r.Remote.r_addr = Some "h2:1" -> ()
  | _ -> Alcotest.fail "local coverage must not be fetched"

let () =
  Alcotest.run "net"
    [
      ( "tcp-server",
        [
          Alcotest.test_case "basic session" `Quick test_basic_session;
          Alcotest.test_case "one-way notify" `Quick test_oneway_notify;
          Alcotest.test_case "runtime joins" `Quick test_runtime_join_installation;
          Alcotest.test_case "two clients" `Quick test_two_clients;
          Alcotest.test_case "garbage input" `Quick test_garbage_input;
          Alcotest.test_case "put_batch pipelined" `Quick test_put_batch_pipelined;
          Alcotest.test_case "push-mode client" `Quick test_push_mode_client;
          Alcotest.test_case "fetch dedup" `Quick test_fetch_dedup;
        ] );
      ("routes", [ Alcotest.test_case "plan coverage" `Quick test_remote_plan ]);
    ]
