(* Tests for the wire protocol: codec primitives, message round trips,
   framing, and driving a Pequod engine through the loopback wire. *)

module Codec = Pequod_proto.Codec
module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame
module Server = Pequod_core.Server

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_varint_roundtrip () =
  List.iter
    (fun n ->
      let buf = Buffer.create 8 in
      Codec.put_varint buf n;
      let r = Codec.reader (Buffer.contents buf) in
      check_int (string_of_int n) n (Codec.get_varint r);
      check_bool "consumed" true (Codec.at_end r))
    [ 0; 1; 127; 128; 300; 16384; 1_000_000; max_int / 4 ]

let test_string_roundtrip () =
  List.iter
    (fun s ->
      let buf = Buffer.create 8 in
      Codec.put_string buf s;
      let r = Codec.reader (Buffer.contents buf) in
      Alcotest.(check string) "string" s (Codec.get_string r))
    [ ""; "x"; "hello|world"; String.make 1000 'a'; "\x00\x01\xfe" ]

let test_decode_errors () =
  let truncated = "\x05abc" in
  check_bool "truncated string" true
    (match Codec.get_string (Codec.reader truncated) with
    | exception Codec.Decode_error _ -> true
    | _ -> false);
  check_bool "empty varint" true
    (match Codec.get_varint (Codec.reader "") with
    | exception Codec.Decode_error _ -> true
    | _ -> false)

let requests =
  [
    Message.Hello { version = Message.protocol_version };
    Message.Hello { version = 0 };
    Message.Get "t|ann|0100|bob";
    Message.Put ("p|bob|0100", "hello world");
    Message.Remove "s|ann|bob";
    Message.Scan { lo = "t|ann|"; hi = "t|ann}" };
    Message.Add_join "t|<u>|<t> = copy p|<u>|<t>";
    Message.Fetch { table = "p"; lo = "p|a"; hi = "p|b"; subscriber = "10.0.0.7:7077" };
    Message.Notify_put ("p|bob|0100", "hi");
    Message.Notify_remove "p|bob|0100";
    Message.Put_batch [ ("p|bob|0100", "hello"); ("s|ann|bob", "1") ];
    Message.Put_batch [];
    Message.Notify_batch
      { items = [ ("p|bob|0100", Some "hi"); ("s|ann|bob", None) ]; stamps = [] };
    Message.Notify_batch
      { items = [ ("p|bob|0100", Some "hi") ];
        stamps = [ ("p", "p|bob|", "p|bob}", 12); ("s", "s|", "s}", 3) ] };
    Message.Notify_batch { items = []; stamps = [] };
    Message.Get_at { key = "t|ann|0100|bob"; min = [] };
    Message.Get_at
      { key = "t|ann|0100|bob"; min = [ ("p", "p|bob|", "p|bob}", 7) ] };
    Message.Scan_at { lo = "t|ann|"; hi = "t|ann}"; min = [] };
    Message.Scan_at
      { lo = "t|ann|"; hi = "t|ann}";
        min = [ ("p", "p|", "p}", 9); ("s", "s|ann|", "s|ann}", 2) ] };
    Message.Stats_full;
    Message.Sub_check { subscriber = "10.0.0.7:7077" };
    Message.Sub_check { subscriber = "" };
    Message.Dir_get;
    Message.Dir_watch { epoch = 0 };
    Message.Dir_watch { epoch = 42 };
    Message.Dir_update { epoch = 1; entries = [] };
    Message.Dir_update
      { epoch = 7;
        entries =
          [
            { Message.de_table = "s"; de_lo = "s|"; de_hi = "s|m";
              de_home = "10.0.0.1:7001"; de_replicas = [] };
            { Message.de_table = "s"; de_lo = "s|m"; de_hi = "s}";
              de_home = "10.0.0.2:7002";
              de_replicas = [ "10.0.0.3:7003"; "10.0.0.4:7004" ] };
          ] };
    Message.Migrate { table = "s"; lo = "s|m"; hi = "s}"; dest = "10.0.0.2:7002" };
  ]

let responses =
  [
    Message.Done;
    Message.Value None;
    Message.Value (Some "payload");
    Message.Pairs [ ("a", "1"); ("b", "2") ];
    Message.Pairs [];
    Message.Welcome { version = Message.protocol_version };
    Message.Subscribed { stamp = 4; pairs = [ ("p|bob|0100", "hi") ] };
    Message.Subscribed { stamp = 0; pairs = [] };
    Message.Stamps [ ("p", "p|bob|0100", "p|bob|0100\x00", 12) ];
    Message.Stamps [];
    Message.Stale [ ("p", "p|", "p}", 9); ("s", "s|", "s}", 2) ];
    Message.Stale [];
    Message.Sub_ranges [ ("p", "p|a", "p|b"); ("s", "s|", "s}") ];
    Message.Sub_ranges [];
    Message.Error "boom";
    Message.Dir_state { epoch = 0; entries = [] };
    Message.Dir_state
      { epoch = 3;
        entries =
          [
            { Message.de_table = "p"; de_lo = "p|"; de_hi = "p}";
              de_home = "10.0.0.1:7001"; de_replicas = [ "10.0.0.9:7009" ] };
          ] };
  ]

let test_message_roundtrip () =
  List.iter
    (fun req ->
      check_bool "request" true (Message.decode_request (Message.encode_request req) = req))
    requests;
  List.iter
    (fun resp ->
      check_bool "response" true (Message.decode_response (Message.encode_response resp) = resp))
    responses

let test_bad_tags () =
  check_bool "bad request tag" true
    (match Message.decode_request "\xff" with
    | exception Message.Protocol_error _ -> true
    | _ -> false);
  check_bool "trailing bytes" true
    (match Message.decode_request (Message.encode_request (Message.Get "k") ^ "x") with
    | exception Message.Protocol_error _ -> true
    | _ -> false)

(* The v1 integer-stats tags stay reserved: decoding them must fail
   loudly with a message naming the protocol version, never misparse. *)
let test_retired_tags () =
  let versioned what f =
    match f () with
    | exception Message.Protocol_error msg ->
      check_bool (what ^ " names the version") true
        (let needle = Printf.sprintf "v%d" Message.protocol_version in
         let rec find i =
           i + String.length needle <= String.length msg
           && (String.sub msg i (String.length needle) = needle || find (i + 1))
         in
         find 0)
    | _ -> Alcotest.failf "%s: retired tag decoded" what
  in
  versioned "stats request (0x09)" (fun () -> Message.decode_request "\x09");
  versioned "stat_list response (0x85)" (fun () -> Message.decode_response "\x85\x00")

(* Version negotiation: the handshake accepts only an exact match, and
   the rejection is an [Error] the v2 client can still decode. *)
let test_handshake () =
  let s = Server.create () in
  (match Message.apply_to_server s (Message.Hello { version = Message.protocol_version }) with
  | Message.Welcome { version } -> check_int "welcome version" Message.protocol_version version
  | _ -> Alcotest.fail "matching hello not welcomed");
  match Message.apply_to_server s (Message.Hello { version = Message.protocol_version + 1 }) with
  | Message.Error msg ->
    let resp = Message.decode_response (Message.encode_response (Message.Error msg)) in
    check_bool "mismatch rejected through the wire" true (resp = Message.Error msg)
  | _ -> Alcotest.fail "version mismatch accepted"

let test_frame_roundtrip () =
  let d = Frame.decoder () in
  let wire = Frame.encode "hello" ^ Frame.encode "" ^ Frame.encode "world" in
  Alcotest.(check (list string)) "frames" [ "hello"; ""; "world" ] (Frame.feed d wire)

let test_frame_incremental () =
  let d = Frame.decoder () in
  let wire = Frame.encode "hello world" in
  (* feed one byte at a time: only the final byte completes the frame *)
  let n = String.length wire in
  let got = ref [] in
  String.iteri
    (fun i c ->
      let frames = Frame.feed d (String.make 1 c) in
      if i < n - 1 then check_int "no early frame" 0 (List.length frames)
      else got := frames)
    wire;
  Alcotest.(check (list string)) "assembled" [ "hello world" ] !got;
  check_int "drained" 0 (Frame.buffered d)

let test_frame_split_across_messages () =
  let d = Frame.decoder () in
  let wire = Frame.encode "aaaa" ^ Frame.encode "bbbb" in
  let mid = String.length wire - 3 in
  let f1 = Frame.feed d (String.sub wire 0 mid) in
  let f2 = Frame.feed d (String.sub wire mid 3) in
  Alcotest.(check (list string)) "first" [ "aaaa" ] f1;
  Alcotest.(check (list string)) "second" [ "bbbb" ] f2

(* Drive a real engine through the wire: the full client experience. *)
let test_loopback_server () =
  let s = Server.create () in
  let handler = Message.apply_to_server s in
  let rpc req =
    let resp, _, _ = Message.loopback handler req in
    resp
  in
  check_bool "add join" true
    (rpc (Message.Add_join "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>")
    = Message.Done);
  check_bool "bad join reported" true
    (match rpc (Message.Add_join "nonsense") with Message.Error _ -> true | _ -> false);
  (* v3: write acks carry the stamp vector for the written keys *)
  let is_ack = function Message.Stamps _ -> true | _ -> false in
  check_bool "put" true (is_ack (rpc (Message.Put ("s|ann|bob", "1"))));
  check_bool "put post" true (is_ack (rpc (Message.Put ("p|bob|0100", "hi"))));
  (match rpc (Message.Scan { lo = "t|ann|"; hi = "t|ann}" }) with
  | Message.Pairs [ ("t|ann|0100|bob", "hi") ] -> ()
  | _ -> Alcotest.fail "scan through the wire");
  (match rpc (Message.Get "t|ann|0100|bob") with
  | Message.Value (Some "hi") -> ()
  | _ -> Alcotest.fail "get through the wire");
  check_bool "remove" true (is_ack (rpc (Message.Remove "p|bob|0100")));
  (match rpc (Message.Scan { lo = "t|ann|"; hi = "t|ann}" }) with
  | Message.Pairs [] -> ()
  | _ -> Alcotest.fail "timeline empty after remove");
  (* a batch through the wire lands in source tables AND fires updaters *)
  check_bool "put_batch" true
    (is_ack
       (rpc
          (Message.Put_batch
             [ ("p|bob|0200", "yo"); ("p|bob|0150", "lo"); ("s|ann|cal", "1") ])));
  (match rpc (Message.Scan { lo = "t|ann|"; hi = "t|ann}" }) with
  | Message.Pairs [ ("t|ann|0150|bob", "lo"); ("t|ann|0200|bob", "yo") ] -> ()
  | _ -> Alcotest.fail "timeline after put_batch");
  (* notify batches interleave puts and removes in source-write order *)
  check_bool "notify_batch" true
    (rpc
       (Message.Notify_batch
          { items = [ ("p|bob|0150", None); ("p|bob|0150", Some "re") ]; stamps = [] })
    = Message.Done);
  (match rpc (Message.Get "t|ann|0150|bob") with
  | Message.Value (Some "re") -> ()
  | _ -> Alcotest.fail "notify_batch remove-then-put order");
  match rpc Message.Stats_full with
  | Message.Metrics metrics -> check_bool "metrics nonempty" true (metrics <> [])
  | _ -> Alcotest.fail "stats_full"

(* Deterministic randomized coverage of EVERY message variant (the qcheck
   generator below skips some), seeded from lib/util's Rng so failures
   reproduce: each random message must round-trip exactly, and every
   strict prefix of its encoding must raise — a truncated buffer can
   never silently decode. *)
let test_rng_all_variants () =
  let rng = Rng.create 0xC0DEC in
  let rand_string ?(maxlen = 24) () =
    String.init (Rng.int rng (maxlen + 1)) (fun _ -> Char.chr (Rng.int rng 256))
  in
  let rand_pairs () =
    List.init (Rng.int rng 4) (fun _ -> (rand_string (), rand_string ()))
  in
  let rand_stamps () =
    List.init (Rng.int rng 4) (fun _ ->
        (rand_string (), rand_string (), rand_string (), Rng.int rng 1_000_000))
  in
  let rand_entries () =
    List.init (Rng.int rng 3) (fun _ ->
        { Message.de_table = rand_string (); de_lo = rand_string ();
          de_hi = rand_string (); de_home = rand_string ();
          de_replicas = List.init (Rng.int rng 3) (fun _ -> rand_string ()) })
  in
  let rand_request variant =
    match variant with
    | 0 -> Message.Get (rand_string ())
    | 1 -> Message.Put (rand_string (), rand_string ())
    | 2 -> Message.Remove (rand_string ())
    | 3 -> Message.Scan { lo = rand_string (); hi = rand_string () }
    | 4 -> Message.Add_join (rand_string ())
    | 5 ->
      Message.Fetch
        { table = rand_string (); lo = rand_string (); hi = rand_string ();
          subscriber = rand_string () }
    | 6 -> Message.Notify_put (rand_string (), rand_string ())
    | 7 -> Message.Notify_remove (rand_string ())
    | 8 -> Message.Put_batch (rand_pairs ())
    | 9 ->
      Message.Notify_batch
        { items =
            List.init (Rng.int rng 4) (fun _ ->
                ( rand_string (),
                  if Rng.int rng 2 = 0 then Some (rand_string ()) else None ));
          stamps = rand_stamps () }
    | 10 -> Message.Hello { version = Rng.int rng 1_000 }
    | 11 -> Message.Sub_check { subscriber = rand_string () }
    | 12 -> Message.Dir_get
    | 13 -> Message.Dir_watch { epoch = Rng.int rng 1_000 }
    | 14 -> Message.Dir_update { epoch = Rng.int rng 1_000; entries = rand_entries () }
    | 15 ->
      Message.Migrate
        { table = rand_string (); lo = rand_string (); hi = rand_string ();
          dest = rand_string () }
    | 16 -> Message.Get_at { key = rand_string (); min = rand_stamps () }
    | 17 ->
      Message.Scan_at { lo = rand_string (); hi = rand_string (); min = rand_stamps () }
    | _ -> Message.Stats_full
  in
  let rand_response variant =
    match variant with
    | 0 -> Message.Done
    | 1 -> Message.Value None
    | 2 -> Message.Value (Some (rand_string ()))
    | 3 -> Message.Pairs (rand_pairs ())
    | 4 -> Message.Welcome { version = Rng.int rng 1_000 }
    | 5 -> Message.Subscribed { stamp = Rng.int rng 1_000_000; pairs = rand_pairs () }
    | 6 ->
      Message.Sub_ranges
        (List.init (Rng.int rng 4) (fun _ -> (rand_string (), rand_string (), rand_string ())))
    | 7 -> Message.Dir_state { epoch = Rng.int rng 1_000; entries = rand_entries () }
    | 8 -> Message.Stamps (rand_stamps ())
    | 9 -> Message.Stale (rand_stamps ())
    | _ -> Message.Error (rand_string ())
  in
  let truncations_raise what wire decode =
    for cut = 0 to String.length wire - 1 do
      match decode (String.sub wire 0 cut) with
      | exception Message.Protocol_error _ -> ()
      | _ -> Alcotest.failf "%s: prefix of %d/%d bytes decoded" what cut (String.length wire)
    done
  in
  for round = 1 to 50 do
    for variant = 0 to 18 do
      let req = rand_request variant in
      let wire = Message.encode_request req in
      check_bool "request round-trips" true (Message.decode_request wire = req);
      if round <= 5 then truncations_raise "request" wire Message.decode_request
    done;
    for variant = 0 to 10 do
      let resp = rand_response variant in
      let wire = Message.encode_response resp in
      check_bool "response round-trips" true (Message.decode_response wire = resp);
      if round <= 5 then truncations_raise "response" wire Message.decode_response
    done
  done

let prop_message_roundtrip =
  let open QCheck2 in
  let str = Gen.string_size ~gen:Gen.printable (Gen.int_bound 40) in
  let req_gen =
    Gen.oneof
      [
        Gen.map (fun k -> Message.Get k) str;
        Gen.map2 (fun k v -> Message.Put (k, v)) str str;
        Gen.map (fun k -> Message.Remove k) str;
        Gen.map2 (fun lo hi -> Message.Scan { lo; hi }) str str;
        Gen.map (fun t -> Message.Add_join t) str;
        Gen.map2
          (fun (t, l) h -> Message.Fetch { table = t; lo = l; hi = h; subscriber = "cb:3" })
          (Gen.pair str str) str;
        Gen.map (fun v -> Message.Hello { version = String.length v }) str;
      ]
  in
  Test.make ~name:"arbitrary requests round-trip" ~count:500 req_gen (fun req ->
      Message.decode_request (Message.encode_request req) = req)

let prop_frames =
  let open QCheck2 in
  Test.make ~name:"frame stream reassembles under arbitrary chunking" ~count:200
    Gen.(pair (list_size (int_range 0 10) (string_size ~gen:char (int_bound 50))) (int_range 1 7))
    (fun (bodies, chunk) ->
      let wire = String.concat "" (List.map Frame.encode bodies) in
      let d = Frame.decoder () in
      let out = ref [] in
      let i = ref 0 in
      while !i < String.length wire do
        let n = min chunk (String.length wire - !i) in
        out := !out @ Frame.feed d (String.sub wire !i n);
        i := !i + n
      done;
      !out = bodies && Frame.buffered d = 0)

let qsuite tests = List.map (QCheck_alcotest.to_alcotest ~long:false) tests

let () =
  Alcotest.run "proto"
    [
      ( "codec",
        [
          Alcotest.test_case "varint" `Quick test_varint_roundtrip;
          Alcotest.test_case "string" `Quick test_string_roundtrip;
          Alcotest.test_case "decode errors" `Quick test_decode_errors;
        ] );
      ( "message",
        [
          Alcotest.test_case "roundtrip" `Quick test_message_roundtrip;
          Alcotest.test_case "bad tags" `Quick test_bad_tags;
          Alcotest.test_case "retired v1 tags rejected" `Quick test_retired_tags;
          Alcotest.test_case "version handshake" `Quick test_handshake;
          Alcotest.test_case "all variants + truncation (rng)" `Quick test_rng_all_variants;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick test_frame_roundtrip;
          Alcotest.test_case "incremental" `Quick test_frame_incremental;
          Alcotest.test_case "split" `Quick test_frame_split_across_messages;
        ] );
      ("loopback", [ Alcotest.test_case "engine over wire" `Quick test_loopback_server ]);
      ("props", qsuite [ prop_message_roundtrip; prop_frames ]);
    ]
