(* Tests for the observability layer: registry primitive semantics,
   log-bucket quantile accuracy against a sorted reference, trace-ring
   wraparound, snapshot JSON and wire round trips, and the differential
   guarantee that disabling [Obs.enabled] cannot change engine results. *)

module Server = Pequod_core.Server
module Config = Pequod_core.Config
module Message = Pequod_proto.Message
module Fuzz = Pequod_fuzz.Fuzz

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* run [f] with [Obs.enabled] forced to [v], restoring it afterward so
   later tests (and other suites in the process) see recording on *)
let with_enabled v f =
  let saved = !Obs.enabled in
  Obs.enabled := v;
  Fun.protect ~finally:(fun () -> Obs.enabled := saved) f

(* ------------------------------------------------------------------ *)
(* Counter / gauge semantics                                           *)

let test_counter () =
  let t = Obs.create () in
  let c = Obs.counter t "c" in
  check_int "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 4;
  check_int "incr+add" 5 (Obs.Counter.value c);
  check_string "name" "c" (Obs.Counter.name c);
  (* get-or-create returns the same counter *)
  Obs.Counter.incr (Obs.counter t "c");
  check_int "same handle" 6 (Obs.Counter.value c);
  check_int "counter_value" 6 (Obs.counter_value t "c");
  check_int "unknown counter reads zero" 0 (Obs.counter_value t "nope");
  (* hot-path mutators are gated; set/force_add are not *)
  with_enabled false (fun () ->
      Obs.Counter.incr c;
      Obs.Counter.add c 100;
      check_int "gated while disabled" 6 (Obs.Counter.value c);
      Obs.Counter.force_add c 10;
      check_int "force_add ignores gate" 16 (Obs.Counter.value c);
      Obs.Counter.set c 3;
      check_int "set ignores gate" 3 (Obs.Counter.value c));
  (* kind clash is an error, not a silent aliasing *)
  check_bool "kind clash raises" true
    (match Obs.gauge t "c" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gauge () =
  let t = Obs.create () in
  let g = Obs.gauge t "g" in
  Obs.Gauge.set g 42;
  Obs.Gauge.add g (-2);
  check_int "set+add" 40 (Obs.Gauge.value g);
  check_string "name" "g" (Obs.Gauge.name g);
  (* gauges mirror measurement-critical state: never gated *)
  with_enabled false (fun () ->
      Obs.Gauge.set g 7;
      check_int "set while disabled" 7 (Obs.Gauge.value g))

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)

let test_histogram_small () =
  let t = Obs.create () in
  let h = Obs.histogram t "h" in
  for v = 1 to 10 do
    Obs.Histogram.observe h v
  done;
  let s = Obs.Histogram.snapshot h in
  check_int "count" 10 s.Obs.Histogram.count;
  check_int "sum" 55 s.Obs.Histogram.sum;
  check_int "min" 1 s.Obs.Histogram.min;
  check_int "max" 10 s.Obs.Histogram.max;
  (* values below 16 land in exact buckets: quantiles are exact *)
  check_int "p50 exact" 5 s.Obs.Histogram.p50;
  check_int "p99 exact" 10 s.Obs.Histogram.p99;
  check_int "quantile 0.1" 1 (Obs.Histogram.quantile h 0.1);
  with_enabled false (fun () ->
      Obs.Histogram.observe h 1000;
      check_int "observe gated" 10 (Obs.Histogram.snapshot h).Obs.Histogram.count)

(* Log-scaled buckets quantize to 4 sub-buckets per power of two, so a
   reported quantile is the midpoint of a bucket whose width is at most
   lo/4: relative error <= ~12.5%. Check that bound against an exact
   sorted-reference quantile on seeded random samples. *)
let test_quantile_reference () =
  let rng = Rng.create 0xBEEF in
  let n = 5000 in
  let samples = Array.init n (fun _ -> 1 + Rng.int rng 1_000_000) in
  let t = Obs.create () in
  let h = Obs.histogram t "lat" in
  Array.iter (Obs.Histogram.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let exact q =
    let rank = max 1 (min n (int_of_float (ceil (q *. float_of_int n)))) in
    sorted.(rank - 1)
  in
  List.iter
    (fun q ->
      let want = exact q in
      let got = Obs.Histogram.quantile h q in
      let err = abs (got - want) in
      let tol = max 1 (int_of_float (0.13 *. float_of_int want)) in
      if err > tol then
        Alcotest.failf "quantile %.2f: got %d, exact %d (err %d > tol %d)" q got want err tol)
    [ 0.5; 0.9; 0.95; 0.99 ];
  check_int "min exact" sorted.(0) (Obs.Histogram.snapshot h).Obs.Histogram.min;
  check_int "max exact" sorted.(n - 1) (Obs.Histogram.snapshot h).Obs.Histogram.max

(* ------------------------------------------------------------------ *)
(* Trace ring                                                          *)

let test_ring_wraparound () =
  let t = Obs.create () in
  Obs.set_trace_capacity t 4;
  for i = 0 to 9 do
    Obs.trace t ~kind:(Printf.sprintf "k%d" i) ~bytes:i ()
  done;
  check_int "events_recorded counts overwritten" 10 (Obs.events_recorded t);
  let recent = Obs.recent_events t in
  check_int "ring keeps capacity" 4 (List.length recent);
  check_string "newest first"
    "k9 k8 k7 k6"
    (String.concat " " (List.map (fun e -> e.Obs.ev_kind) recent));
  (* sequence numbers keep counting across wraps *)
  List.iteri (fun i e -> check_int "seq" (9 - i) e.Obs.ev_seq) recent;
  check_int "recent_events ~n" 2 (List.length (Obs.recent_events ~n:2 t));
  with_enabled false (fun () ->
      Obs.trace t ~kind:"dropped" ();
      check_int "trace gated" 10 (Obs.events_recorded t))

(* ------------------------------------------------------------------ *)
(* Snapshot round trips                                                *)

(* JSON cannot distinguish a counter from a gauge (both are plain
   integers), so the parsed form maps Counter -> Gauge. *)
let as_parsed = function
  | name, Obs.Counter n -> (name, Obs.Gauge n)
  | entry -> entry

let test_json_roundtrip () =
  let t = Obs.create () in
  Obs.Counter.add (Obs.counter t "ops.total") 12345;
  Obs.Gauge.set (Obs.gauge t "memory.bytes") 987654321;
  Obs.Gauge.set (Obs.gauge t "zero") 0;
  let h = Obs.histogram t "lat.ns" in
  List.iter (Obs.Histogram.observe h) [ 1; 3; 17; 250; 100_000 ];
  let snap = Obs.snapshot t in
  let json = Obs.json_of_snapshot snap in
  let parsed = Obs.snapshot_of_json json in
  check_int "entry count" (List.length snap) (List.length parsed);
  List.iter2
    (fun want got ->
      let wname, wval = as_parsed want in
      let gname, gval = got in
      check_string "name" wname gname;
      check_bool (Printf.sprintf "value of %s" wname) true (wval = gval))
    snap parsed;
  (* empty registry round-trips too *)
  check_bool "empty" true (Obs.snapshot_of_json (Obs.json_of_snapshot []) = [])

let test_wire_metrics_roundtrip () =
  let metrics =
    [ ("net.rpcs", Obs.Counter 42);
      ("memory.bytes", Obs.Gauge 123456);
      ( "op.scan.ns",
        Obs.Histogram
          { Obs.Histogram.count = 7; sum = 700; min = 10; max = 300; p50 = 80; p95 = 290;
            p99 = 300 } ) ]
  in
  match Message.decode_response (Message.encode_response (Message.Metrics metrics)) with
  | Message.Metrics got ->
    check_int "entries" (List.length metrics) (List.length got);
    check_bool "round trip" true (got = metrics)
  | _ -> Alcotest.fail "expected Metrics response"

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)

let timeline_join =
  "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let test_server_registry () =
  let s = Server.create () in
  Server.add_join_exn s timeline_join;
  Server.put s "s|ann|bob" "1";
  Server.put s "p|bob|0000000100" "hi";
  Server.put s "p|bob|0000000200" "again";
  let pairs = Server.scan s ~lo:"t|ann|" ~hi:"t|ann}" in
  check_int "timeline" 2 (List.length pairs);
  (* store.put is store-level: 3 base writes + 2 derived timeline pairs *)
  check_int "store.put" 5 (Server.counter s "store.put");
  check_int "op.scan" 1 (Server.counter s "op.scan");
  (* the first scan materializes the range by recomputation... *)
  check_bool "executor ran" true (Server.counter s "exec.run" > 0);
  (* ...and installs updaters, so a later post is applied eagerly *)
  Server.put s "p|bob|0000000300" "fresh";
  check_bool "updater ran" true (Server.counter s "updater.run" > 0);
  (* the resident-bytes gauge comes from the same ledger the invariant
     checker audits *)
  let stats = Server.stats_snapshot s in
  check_int "memory.bytes gauge" (Server.memory_bytes s) (List.assoc "memory.bytes" stats);
  Server.check_invariants s;
  (* scans leave both a histogram sample and a trace event *)
  (match List.assoc "op.scan.ns" (Server.metrics_snapshot s) with
  | Obs.Histogram h -> check_int "scan histogram count" 1 h.Obs.Histogram.count
  | _ -> Alcotest.fail "op.scan.ns should be a histogram");
  check_bool "scan trace recorded" true
    (List.exists (fun e -> e.Obs.ev_kind = "scan") (Obs.recent_events (Server.obs s)))

(* ------------------------------------------------------------------ *)
(* Differential: Obs.enabled=false must not change engine results       *)

(* replay a fuzz op sequence on a fresh engine (no oracle) and build a
   byte-exact transcript of every read result *)
let run_transcript scenario ops =
  let clock = ref 1_000_000.0 in
  let config = Config.default () in
  config.Config.now <- (fun () -> !clock);
  let server = Server.create ~config () in
  List.iter (fun j -> Server.add_join_exn server j) scenario.Fuzz.sc_joins;
  let extra = Array.of_list scenario.Fuzz.sc_extra in
  let installed = Array.map (fun _ -> false) extra in
  let buf = Buffer.create 4096 in
  List.iter
    (fun op ->
      match op with
      | Fuzz.Put (k, v) -> Server.put server k v
      | Fuzz.Put_batch pairs -> Server.put_batch server pairs
      | Fuzz.Remove k -> Server.remove server k
      | Fuzz.Scan (lo, hi) | Fuzz.Count (lo, hi) ->
        clock := !clock +. scenario.Fuzz.sc_tick;
        List.iter
          (fun (k, v) -> Printf.bprintf buf "%S=%S\n" k v)
          (Server.scan server ~lo ~hi)
      | Fuzz.Tick -> clock := !clock +. 1.0
      | Fuzz.Add_join i ->
        if i < Array.length extra && not installed.(i) then begin
          installed.(i) <- true;
          Server.add_join_exn server extra.(i)
        end
      | Fuzz.Crash -> ())
    ops;
  Printf.bprintf buf "memory=%d size=%d\n" (Server.memory_bytes server) (Server.size server);
  Server.check_invariants server;
  Buffer.contents buf

let test_disabled_is_inert () =
  let scenario =
    match Fuzz.find_scenario "twip" with
    | Some s -> s
    | None -> Alcotest.fail "twip scenario missing"
  in
  let ops =
    let rng = Rng.create (Fuzz.derive_seed 0xC0FFEE 1) in
    Fuzz.gen_ops scenario rng ~max_ops:400
  in
  let on = with_enabled true (fun () -> run_transcript scenario ops) in
  let off = with_enabled false (fun () -> run_transcript scenario ops) in
  check_bool "transcript non-trivial" true (String.length on > 0);
  check_string "enabled=false is byte-identical" on off

let () =
  Alcotest.run "obs"
    [ ( "registry",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram small" `Quick test_histogram_small;
          Alcotest.test_case "quantile vs sorted reference" `Quick test_quantile_reference ] );
      ( "trace",
        [ Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound ] );
      ( "snapshots",
        [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "wire Metrics roundtrip" `Quick test_wire_metrics_roundtrip ] );
      ( "engine",
        [ Alcotest.test_case "server registry" `Quick test_server_registry;
          Alcotest.test_case "disabled observability is inert" `Quick test_disabled_is_inert ] )
    ]
