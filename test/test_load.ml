(* Load-harness correctness: deterministic per-worker streams, exact
   histogram pooling, and the generator's scaling contract (a 1M-user
   graph is four flat CSR arrays, Zipf-skewed). *)

module Social_graph = Pequod_apps.Social_graph
module Workload = Pequod_apps.Workload

let check_bool = Test_util.check_bool
let check_int = Test_util.check_int

(* ------------------------------------------------------------------ *)
(* Rng.stream: pure per-worker substream derivation                    *)

let draws rng n = List.init n (fun _ -> Rng.int rng 1_000_000)

let test_stream_deterministic () =
  let a = draws (Rng.stream ~seed:42 ~index:3) 1000 in
  let b = draws (Rng.stream ~seed:42 ~index:3) 1000 in
  check_bool "same (seed, index) => same stream" true (a = b)

let test_stream_independent () =
  let a = draws (Rng.stream ~seed:42 ~index:0) 1000 in
  let b = draws (Rng.stream ~seed:42 ~index:1) 1000 in
  let c = draws (Rng.stream ~seed:43 ~index:0) 1000 in
  check_bool "neighbouring workers differ" true (a <> b);
  check_bool "different roots differ" true (a <> c);
  (* unlike Rng.split, derivation is order-free: drawing from worker 0
     first must not perturb worker 1's stream *)
  let r0 = Rng.stream ~seed:42 ~index:0 in
  ignore (draws r0 17);
  check_bool "index 1 unaffected by index 0 usage" true
    (draws (Rng.stream ~seed:42 ~index:1) 1000 = b)

(* A whole worker fleet's op sequence is a function of (seed, nworkers)
   alone — the property the cluster harness leans on for reproducible
   runs. *)
let test_fleet_deterministic () =
  let graph = Social_graph.generate ~rng:(Rng.create 7) ~nusers:500 ~avg_follows:5 () in
  let worker_ops ~seed ~index ~nworkers n =
    let st =
      Workload.stream
        ~rng:(Rng.stream ~seed ~index)
        ~graph ~first_time:(1_000_000 + index) ~time_stride:nworkers ()
    in
    List.init n (fun _ -> Workload.next st)
  in
  for i = 0 to 2 do
    check_bool
      (Printf.sprintf "worker %d replays identically" i)
      true
      (worker_ops ~seed:11 ~index:i ~nworkers:3 500 = worker_ops ~seed:11 ~index:i ~nworkers:3 500)
  done;
  check_bool "workers draw distinct streams" true
    (worker_ops ~seed:11 ~index:0 ~nworkers:3 500 <> worker_ops ~seed:11 ~index:1 ~nworkers:3 500)

(* ------------------------------------------------------------------ *)
(* Histogram merge                                                     *)

(* skewed sample: mostly small with a heavy tail, like latencies *)
let sample rng = let v = Rng.int rng 1_000 in 10 + (v * v / 37)

let test_hist_merge_pooled () =
  Obs.enabled := true;
  let obs = Obs.create () in
  let a = Obs.histogram obs "a" in
  let b = Obs.histogram obs "b" in
  let pooled = Obs.histogram obs "pooled" in
  let rng = Rng.create 99 in
  let all = ref [] in
  for i = 0 to 9_999 do
    let v = sample rng in
    all := v :: !all;
    Obs.Histogram.observe (if i land 1 = 0 then a else b) v;
    Obs.Histogram.observe pooled v
  done;
  let merged = Obs.Histogram.merge (Obs.Histogram.dense a) (Obs.Histogram.dense b) in
  let m = Obs.histogram obs "merged" in
  Obs.Histogram.absorb m merged;
  (* merged-then-read must equal pooled-then-read, exactly: the two
     histograms saw the same multiset of samples *)
  let sm = Obs.Histogram.snapshot m and sp = Obs.Histogram.snapshot pooled in
  check_int "count" sp.Obs.Histogram.count sm.Obs.Histogram.count;
  check_int "sum" sp.Obs.Histogram.sum sm.Obs.Histogram.sum;
  check_int "min" sp.Obs.Histogram.min sm.Obs.Histogram.min;
  check_int "max" sp.Obs.Histogram.max sm.Obs.Histogram.max;
  check_int "p50" sp.Obs.Histogram.p50 sm.Obs.Histogram.p50;
  check_int "p95" sp.Obs.Histogram.p95 sm.Obs.Histogram.p95;
  check_int "p99" sp.Obs.Histogram.p99 sm.Obs.Histogram.p99;
  (* ... and both must sit within bucket resolution (~12% relative
     error above 16, exact below) of the true sample percentiles *)
  let sorted = Array.of_list !all in
  Array.sort compare sorted;
  let true_q q = sorted.(min (Array.length sorted - 1) (int_of_float (q *. 10_000.))) in
  let within name est truth =
    let tol = if truth < 16 then 0 else 3 + (truth / 6) in
    check_bool
      (Printf.sprintf "%s %d within %d of true %d" name est tol truth)
      true
      (abs (est - truth) <= tol)
  in
  within "p50" sm.Obs.Histogram.p50 (true_q 0.50);
  within "p95" sm.Obs.Histogram.p95 (true_q 0.95);
  within "p99" sm.Obs.Histogram.p99 (true_q 0.99)

let test_hist_merge_empty () =
  Obs.enabled := true;
  let obs = Obs.create () in
  let a = Obs.histogram obs "a" in
  Obs.Histogram.observe a 5;
  Obs.Histogram.observe a 500;
  let empty = Obs.Histogram.dense (Obs.histogram obs "empty") in
  let d = Obs.Histogram.dense a in
  let out = Obs.histogram obs "out" in
  Obs.Histogram.absorb out (Obs.Histogram.merge d empty);
  Obs.Histogram.absorb out (Obs.Histogram.merge empty empty);
  let s = Obs.Histogram.snapshot out in
  check_int "merge with empty keeps count" 2 s.Obs.Histogram.count;
  check_int "merge with empty keeps sum" 505 s.Obs.Histogram.sum

let test_dense_roundtrip () =
  Obs.enabled := true;
  let obs = Obs.create () in
  let h = Obs.histogram obs "h" in
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    Obs.Histogram.observe h (sample rng)
  done;
  let d = Obs.Histogram.dense h in
  let s = Obs.Histogram.dense_to_string d in
  check_bool "dense encoding round-trips" true
    (Obs.Histogram.dense_to_string (Obs.Histogram.dense_of_string s) = s);
  check_bool "malformed dense rejected" true
    (match Obs.Histogram.dense_of_string "not a histogram" with
    | exception Failure _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Streaming workload vs materialized                                  *)

let test_stream_matches_generate () =
  let mkgraph () = Social_graph.generate ~rng:(Rng.create 3) ~nusers:800 ~avg_follows:6 () in
  let total_ops = 5_000 in
  let w =
    Workload.generate ~rng:(Rng.create 21) ~graph:(mkgraph ()) ~active_fraction:0.6
      ~total_ops ()
  in
  let st =
    Workload.stream ~rng:(Rng.create 21) ~graph:(mkgraph ()) ~active_fraction:0.6 ()
  in
  let streamed = Array.init total_ops (fun _ -> Workload.next st) in
  check_bool "stream and generate agree op-for-op" true (w.Workload.ops = streamed);
  (* the materialized op-class tallies come from the same counters *)
  check_int "posts counted" w.Workload.nposts
    (Array.fold_left
       (fun n op -> match op with Workload.Post _ -> n + 1 | _ -> n)
       0 streamed);
  check_int "checks counted" w.Workload.nchecks
    (Array.fold_left
       (fun n op -> match op with Workload.Check _ -> n + 1 | _ -> n)
       0 streamed)

(* ------------------------------------------------------------------ *)
(* Generator at scale                                                  *)

let test_million_user_memory () =
  let nusers = 1_000_000 and avg_follows = 4 in
  Gc.compact ();
  let live0 = (Gc.stat ()).Gc.live_words in
  let g = Social_graph.generate ~rng:(Rng.create 1) ~nusers ~avg_follows () in
  Gc.compact ();
  let live1 = (Gc.stat ()).Gc.live_words in
  let edges = Social_graph.edge_count g in
  check_bool "graph has ~avg_follows * nusers edges" true
    (edges > 3 * nusers && edges < 7 * nusers);
  (* the CSR contract: the whole graph is 2 edge arrays + 2 index
     arrays, nothing per-user *)
  check_int "memory model is exactly the four arrays"
    ((2 * (nusers + 1 + 1)) + (2 * (edges + 1)) + 6)
    (Social_graph.memory_words g);
  let delta = live1 - live0 in
  let slack = 262_144 (* test scaffolding, closures, Gc noise *) in
  check_bool
    (Printf.sprintf "live heap grew by %d words for a %d-word graph" delta
       (Social_graph.memory_words g))
    true
    (delta <= Social_graph.memory_words g + slack);
  (* O(1) accessors agree with the materialized views *)
  check_int "follow_count matches slice" (Array.length (Social_graph.following g 0))
    (Social_graph.follow_count g 0);
  ignore (Sys.opaque_identity g)

let test_zipf_tail () =
  let nusers = 100_000 in
  let g = Social_graph.generate ~rng:(Rng.create 2) ~nusers ~avg_follows:8 () in
  let edges = Social_graph.edge_count g in
  (* low ids are high Zipf ranks: audience decays along the id axis *)
  let fc = Social_graph.follower_count g in
  check_bool
    (Printf.sprintf "rank 0 (%d) >> rank 1000 (%d)" (fc 0) (fc 1000))
    true
    (fc 0 > 4 * fc 1000 && fc 1000 > fc 50_000);
  (* top 1% of users hold the majority of the audience: for Zipf s=1,
     H(n/100)/H(n) ~ 0.6 of all in-edges at this scale *)
  let top = ref 0 in
  for p = 0 to (nusers / 100) - 1 do
    top := !top + fc p
  done;
  let share = float_of_int !top /. float_of_int edges in
  check_bool
    (Printf.sprintf "top-1%% audience share %.3f in [0.40, 0.85]" share)
    true
    (share >= 0.40 && share <= 0.85);
  (* every reverse edge mirrors a forward edge *)
  let ok = ref true in
  for u = 0 to 499 do
    Social_graph.iter_following g u (fun p ->
        let found = ref false in
        Social_graph.iter_followers g p (fun f -> if f = u then found := true);
        if not !found then ok := false)
  done;
  check_bool "reverse CSR mirrors forward edges" true !ok

let () =
  Alcotest.run "load"
    [ ( "rng-stream",
        [ Alcotest.test_case "deterministic" `Quick test_stream_deterministic;
          Alcotest.test_case "independent" `Quick test_stream_independent;
          Alcotest.test_case "fleet-deterministic" `Quick test_fleet_deterministic ] );
      ( "histogram-merge",
        [ Alcotest.test_case "pooled" `Quick test_hist_merge_pooled;
          Alcotest.test_case "empty" `Quick test_hist_merge_empty;
          Alcotest.test_case "dense-roundtrip" `Quick test_dense_roundtrip ] );
      ( "workload",
        [ Alcotest.test_case "stream-matches-generate" `Quick test_stream_matches_generate ]
      );
      ( "graph-scale",
        [ Alcotest.test_case "million-user-memory" `Slow test_million_user_memory;
          Alcotest.test_case "zipf-tail" `Quick test_zipf_tail ] ) ]
