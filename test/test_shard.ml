(* Shard-per-core battery (ISSUE 7): equivalence of a 1-shard and an
   N-shard server over real TCP under an identical seeded transcript,
   codec torture under both poller backends, and an fd-scale run past
   the select limit.

   The sharded server runs its engines in real Domains (one per shard
   plus the acceptor), so these tests exercise the actual concurrency:
   cross-shard routing, the intra-process fetch+subscribe path, and the
   asynchronous notify pushes — the transcript comparisons wait for
   convergence with a bounded retry instead of assuming synchrony. *)

module Shard = Pequod_server_lib.Shard
module Net_server = Pequod_server_lib.Net_server
module Net_client = Pequod_server_lib.Net_client
module Server = Pequod_core.Server
module Message = Pequod_proto.Message
module Frame = Pequod_proto.Frame
(* pequod_obs is unwrapped: the registry module is just [Obs] *)

let check_bool = Alcotest.(check bool)

(* v3 write acks carry a stamp vector instead of a bare Done *)
let is_ack = function Message.Stamps _ | Message.Done -> true | _ -> false

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

(* ------------------------------------------------------------------ *)
(* Transcript equivalence                                              *)

(* splitmix-style generator: the transcript is a pure function of the
   seed, so the 1-shard and 3-shard runs replay byte-identical input *)
let rng seed =
  let st = ref (seed land 0x3FFFFFFF) in
  fun n ->
    st := ((!st * 1103515245) + 12345) land 0x3FFFFFFF;
    (!st lsr 7) mod n

type top =
  | T_put of string * string
  | T_batch of (string * string) list
  | T_remove of string
  | T_scan of string * string

(* users straddle the cut points ("b", "d") of the 3-shard server:
   ann -> shard 0, bob/cal -> shard 1, dee/eve -> shard 2. A timeline
   entry t|u|tm|p joins s|u|p (owned by u's shard) with p|p|tm (owned
   by p's shard), so most timelines cross shards. *)
let users = [| "ann"; "bob"; "cal"; "dee"; "eve" |]

let gen_transcript seed n =
  let r = rng seed in
  let user () = users.(r (Array.length users)) in
  let tm () = Printf.sprintf "%04d" (r 30) in
  let post u = ("p|" ^ u ^ "|" ^ tm (), Printf.sprintf "v%d" (r 1000)) in
  List.init n (fun _ ->
      match r 10 with
      | 0 | 1 -> T_put ("s|" ^ user () ^ "|" ^ user (), "1")
      | 2 | 3 ->
        let k, v = post (user ()) in
        T_put (k, v)
      | 4 -> T_batch (List.init (1 + r 5) (fun _ -> post (user ())))
      | 5 ->
        let k, _ = post (user ()) in
        T_remove k
      | 6 | 7 ->
        let u = user () in
        T_scan ("t|" ^ u ^ "|", "t|" ^ u ^ "}")
      | 8 -> T_scan ("p|", "p}") (* whole-table: scattered across slices *)
      | _ -> T_scan ("", "\xfe") (* cross-table scatter *))

let scan_of client lo hi =
  match Net_client.call client (Message.Scan { lo; hi }) with
  | Message.Pairs pairs -> pairs
  | Message.Error m -> Alcotest.failf "scan [%S, %S): %s" lo hi m
  | _ -> Alcotest.fail "unexpected scan response"

(* replay [ops]; [want] (from the reference run) makes each scan wait
   for convergence: the sharded server acknowledges a write once the
   owner applied it, but subscription pushes to sibling shards are
   asynchronous. Returns the scan results in transcript order. *)
let replay ?want client issued ops =
  let scans = ref [] in
  List.iteri
    (fun i op ->
      match op with
      | T_put (k, v) ->
        incr issued;
        check_bool "put" true (is_ack (Net_client.call client (Message.Put (k, v))))
      | T_batch pairs ->
        incr issued;
        check_bool "batch" true (is_ack (Net_client.call client (Message.Put_batch pairs)))
      | T_remove k ->
        incr issued;
        check_bool "remove" true (is_ack (Net_client.call client (Message.Remove k)))
      | T_scan (lo, hi) ->
        let reference = Option.map (fun w -> List.assoc i w) want in
        let deadline = Unix.gettimeofday () +. 5.0 in
        let rec converged () =
          incr issued;
          let got = scan_of client lo hi in
          match reference with
          | Some w when got <> w && Unix.gettimeofday () < deadline ->
            Unix.sleepf 0.02;
            converged ()
          | _ -> got
        in
        scans := (i, converged ()) :: !scans)
    ops;
  List.rev !scans

let counter_value metrics name =
  match List.assoc_opt name metrics with
  | Some (Obs.Counter n) -> n
  | Some (Obs.Gauge n) -> n
  | _ -> Alcotest.failf "metric %s missing" name

let with_shard_server ?cuts ~shards f =
  let t =
    Shard.create ?cuts ~port:0 ~joins:[ timeline_join ] ~memory_limit:None ~shards ()
  in
  Shard.start t;
  let client = Net_client.create ~host:"127.0.0.1" ~port:(Shard.port t) () in
  Fun.protect
    ~finally:(fun () ->
      Net_client.close client;
      Shard.stop t)
    (fun () -> f t client)

let test_transcript_equivalence () =
  let ops = gen_transcript 0xfeed 160 in
  (* reference: the same public surface with a single engine *)
  let reference =
    with_shard_server ~shards:1 (fun _ client ->
        let issued = ref 0 in
        replay client issued ops)
  in
  check_bool "reference scans" true (reference <> []);
  with_shard_server ~cuts:[ "b"; "d" ] ~shards:3 (fun t client ->
      let issued = ref 1 (* the client handshake Hello *) in
      let sharded = replay ~want:reference client issued ops in
      (* byte-identical scans, after convergence *)
      List.iter2
        (fun (i, want) (i', got) ->
          check_bool "scan index" true (i = i');
          if got <> want then
            Alcotest.failf "scan %d diverges: %d pairs vs %d reference" i
              (List.length got) (List.length want))
        reference sharded;
      (* conserved aggregate metrics: every sibling call one shard sent
         was received by a sibling, and the acceptor-handed requests the
         shards counted are exactly the requests this test issued *)
      incr issued;
      let metrics =
        match Net_client.call client Message.Stats_full with
        | Message.Metrics m -> m
        | _ -> Alcotest.fail "stats_full"
      in
      let out = counter_value metrics "shard.forward.out" in
      let inn = counter_value metrics "shard.forward.in" in
      if out <> inn then Alcotest.failf "forward.out %d <> forward.in %d" out inn;
      check_bool "forwards happened" true (out > 0);
      let client_ops = counter_value metrics "shard.client.ops" in
      if client_ops <> !issued then
        Alcotest.failf "shard.client.ops %d <> issued %d" client_ops !issued;
      (* per-shard breakdowns are present and sum to the totals *)
      let per_shard name =
        List.init (Shard.shards t) (fun i ->
            counter_value metrics (Printf.sprintf "shard.%d.%s" i name))
      in
      let sum l = List.fold_left ( + ) 0 l in
      check_bool "per-shard ops sum" true
        (sum (per_shard "ops") = counter_value metrics "shard.ops");
      check_bool "every shard served" true (List.for_all (fun n -> n > 0) (per_shard "ops"));
      (* engines are structurally sound after the storm (checked after
         stop in the finally would race the domains; stop first) *)
      Shard.stop t;
      List.iter Server.check_invariants (Shard.engines t))

(* writes through one shard's slice are visible through every route:
   the owner directly, a sibling via forward, and the public scan *)
let test_cross_shard_freshness () =
  with_shard_server ~cuts:[ "b"; "d" ] ~shards:3 (fun _ client ->
      check_bool "sub" true (is_ack (Net_client.call client (Message.Put ("s|ann|dee", "1"))));
      check_bool "post" true
        (is_ack (Net_client.call client (Message.Put ("p|dee|0042", "hello"))));
      (* ann (shard 0) follows dee (shard 2): the timeline join on ann's
         shard must fetch dee's posts across shards *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      let rec wait () =
        match scan_of client "t|ann|" "t|ann}" with
        | [ ("t|ann|0042|dee", "hello") ] -> ()
        | _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.02;
          wait ()
        | got -> Alcotest.failf "cross-shard timeline: %d pairs" (List.length got)
      in
      wait ();
      (* a later post must arrive through the subscription push, not a
         refetch: write, then watch the already-materialized timeline *)
      check_bool "post2" true
        (is_ack (Net_client.call client (Message.Put ("p|dee|0043", "again"))));
      let rec wait2 () =
        match scan_of client "t|ann|" "t|ann}" with
        | [ _; ("t|ann|0043|dee", "again") ] -> ()
        | _ when Unix.gettimeofday () < deadline ->
          Unix.sleepf 0.02;
          wait2 ()
        | got -> Alcotest.failf "push freshness: %d pairs" (List.length got)
      in
      wait2 ())

(* ------------------------------------------------------------------ *)
(* Codec torture: malformed byte streams must never crash or wedge the
   loop — under both poller backends. *)

let with_stepped_server ~backend f =
  let t = Net_server.create ~backend ~port:0 ~joins:[] ~memory_limit:None () in
  Fun.protect ~finally:(fun () -> Net_server.stop t) (fun () -> f t)

let connect t =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Net_server.port t));
  fd

let send_all fd s =
  let sent = ref 0 in
  while !sent < String.length s do
    sent := !sent + Unix.write_substring fd s !sent (String.length s - !sent)
  done

(* pump the server and read one response frame *)
let read_response t fd =
  let decoder = Frame.decoder () in
  let buf = Bytes.create 65536 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if Unix.gettimeofday () > deadline then failwith "response timeout";
    Net_server.step ~timeout:0.01 t;
    match Unix.select [ fd ] [] [] 0.01 with
    | [ _ ], _, _ -> (
      let n = Unix.read fd buf 0 (Bytes.length buf) in
      if n = 0 then failwith "connection closed";
      match Frame.feed decoder (Bytes.sub_string buf 0 n) with
      | frame :: _ -> Message.decode_response frame
      | [] -> go ())
    | _ -> go ()
  in
  go ()

let rpc t fd req =
  send_all fd (Frame.encode (Message.encode_request req));
  read_response t fd

(* the server must close the connection: pump until our read sees EOF *)
let expect_close t fd =
  let buf = Bytes.create 256 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec go () =
    if Unix.gettimeofday () > deadline then failwith "server did not close";
    Net_server.step ~timeout:0.01 t;
    match Unix.select [ fd ] [] [] 0.01 with
    | [ _ ], _, _ -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ())
    | _ -> go ()
  in
  go ()

(* after each torture case the server must still serve a clean session *)
let assert_still_serving t =
  let fd = connect t in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      check_bool "still serving" true
        (is_ack (rpc t fd (Message.Put ("health|k", "ok"))));
      match rpc t fd (Message.Get "health|k") with
      | Message.Value (Some "ok") -> ()
      | _ -> Alcotest.fail "server wedged after torture case")

let torture ~backend () =
  with_stepped_server ~backend (fun t ->
      (* byte-at-a-time: a pipelined trio dribbled one byte per step
         must still produce exactly the three responses *)
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let wire =
            Frame.encode
              (Message.encode_request (Message.Hello { version = Message.protocol_version }))
            ^ Frame.encode (Message.encode_request (Message.Put ("b|one", "1")))
            ^ Frame.encode (Message.encode_request (Message.Get "b|one"))
          in
          String.iter
            (fun c ->
              send_all fd (String.make 1 c);
              Net_server.step ~timeout:0.0 t)
            wire;
          (* pipelined responses can arrive coalesced in one read: decode
             them through one persistent decoder *)
          let decoder = Frame.decoder () in
          let buf = Bytes.create 4096 in
          let deadline = Unix.gettimeofday () +. 5.0 in
          let responses = ref [] in
          while List.length !responses < 3 do
            if Unix.gettimeofday () > deadline then failwith "byte-at-a-time timeout";
            Net_server.step ~timeout:0.01 t;
            match Unix.select [ fd ] [] [] 0.01 with
            | [ _ ], _, _ ->
              let n = Unix.read fd buf 0 (Bytes.length buf) in
              if n = 0 then failwith "connection closed";
              List.iter
                (fun frame -> responses := Message.decode_response frame :: !responses)
                (Frame.feed decoder (Bytes.sub_string buf 0 n))
            | _ -> ()
          done;
          match List.rev !responses with
          | [ Message.Welcome _; (Message.Done | Message.Stamps _); Message.Value (Some "1") ] -> ()
          | _ -> Alcotest.fail "byte-at-a-time session");
      (* truncated frame: a header promising 100 bytes, 10 delivered,
         then disconnect — the server must just drop the connection *)
      let fd = connect t in
      send_all fd "\x00\x00\x00\x64partialpay";
      Net_server.step ~timeout:0.01 t;
      Unix.close fd;
      Net_server.step ~timeout:0.01 t;
      assert_still_serving t;
      (* oversized frame: a length beyond Frame.max_frame must get the
         connection dropped before any allocation of that size *)
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          send_all fd "\x7f\xff\xff\xff";
          expect_close t fd);
      assert_still_serving t;
      (* garbage tag: a well-framed payload that is not a request gets a
         protocol-error response and the session continues *)
      let fd = connect t in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send_all fd (Frame.encode "\xee\xaa\xbb\xcc");
          (match read_response t fd with
          | Message.Error _ -> ()
          | _ -> Alcotest.fail "garbage tag must answer an error");
          check_bool "session survives garbage" true
            (is_ack (rpc t fd (Message.Put ("b|two", "2")))));
      (* mid-handshake disconnect: half a Hello then EOF *)
      let fd = connect t in
      let hello =
        Frame.encode (Message.encode_request (Message.Hello { version = Message.protocol_version }))
      in
      send_all fd (String.sub hello 0 (String.length hello / 2));
      Net_server.step ~timeout:0.01 t;
      Unix.close fd;
      Net_server.step ~timeout:0.01 t;
      assert_still_serving t)

(* ------------------------------------------------------------------ *)
(* Fd-scale: the epoll poller must serve more sockets than FD_SETSIZE
   (1024) allows a select loop. *)

let fd_soft_limit () =
  (* /proc/self/limits: "Max open files  <soft>  <hard>  files" *)
  match open_in "/proc/self/limits" with
  | exception Sys_error _ -> None
  | ic ->
    let rec find () =
      match input_line ic with
      | line when String.length line >= 14 && String.sub line 0 14 = "Max open files" -> (
        match
          String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
        with
        | _ :: _ :: _ :: soft :: _ -> int_of_string_opt soft
        | _ -> None)
      | _ -> find ()
      | exception End_of_file -> None
    in
    let r = find () in
    close_in ic;
    r

let test_fd_scale () =
  let conns = 1100 in
  (match fd_soft_limit () with
  | Some limit when limit < (2 * conns) + 200 ->
    Printf.printf "SKIP fd-scale: ulimit -n is %d, need >= %d\n%!" limit ((2 * conns) + 200);
    Alcotest.skip ()
  | _ -> ());
  let t =
    Shard.create ~backend:`Epoll ~port:0 ~joins:[] ~memory_limit:None ~shards:1 ()
  in
  Shard.start t;
  let fds = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) !fds;
      Shard.stop t)
    (fun () ->
      check_bool "epoll backend" true
        (List.for_all
           (fun srv -> Net_server.poller_backend srv = `Epoll)
           (Shard.servers t));
      let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, Shard.port t) in
      for _ = 1 to conns do
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        (* blocking sockets with a receive deadline: these fds exceed
           FD_SETSIZE, so the client side must not use select either *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
        Unix.connect fd addr;
        fds := fd :: !fds
      done;
      (* every connection held open, one write each, server-side fd count
         is now > 1024 *)
      let buf = Bytes.create 4096 in
      List.iteri
        (fun i fd ->
          send_all fd
            (Frame.encode
               (Message.encode_request (Message.Put (Printf.sprintf "f|%05d" i, "x"))));
          let decoder = Frame.decoder () in
          let rec read_done () =
            let n = Unix.read fd buf 0 (Bytes.length buf) in
            if n = 0 then failwith "connection closed under fd pressure";
            match Frame.feed decoder (Bytes.sub_string buf 0 n) with
            | frame :: _ -> Message.decode_response frame
            | [] -> read_done ()
          in
          match read_done () with
          | Message.Done | Message.Stamps _ -> ()
          | _ -> Alcotest.failf "put %d under fd pressure" i)
        !fds;
      (* all writes landed, served through one epoll loop *)
      match !fds with
      | probe :: _ -> (
        send_all probe
          (Frame.encode (Message.encode_request (Message.Scan { lo = "f|"; hi = "f}" })));
        let decoder = Frame.decoder () in
        let rec read_scan () =
          let n = Unix.read probe buf 0 (Bytes.length buf) in
          if n = 0 then failwith "probe closed";
          match Frame.feed decoder (Bytes.sub_string buf 0 n) with
          | frame :: _ -> Message.decode_response frame
          | [] -> read_scan ()
        in
        match read_scan () with
        | Message.Pairs pairs ->
          Alcotest.(check int) "all pairs present" conns (List.length pairs)
        | _ -> Alcotest.fail "scan under fd pressure")
      | [] -> assert false)

let () =
  Alcotest.run "shard"
    [
      ( "equivalence",
        [
          Alcotest.test_case "1-shard vs 3-shard transcript" `Quick
            test_transcript_equivalence;
          Alcotest.test_case "cross-shard freshness" `Quick test_cross_shard_freshness;
        ] );
      ( "codec-torture",
        [
          Alcotest.test_case "select backend" `Quick (torture ~backend:`Select);
          Alcotest.test_case "epoll backend" `Quick (torture ~backend:`Epoll);
        ] );
      ("fd-scale", [ Alcotest.test_case "1100 connections over epoll" `Quick test_fd_scale ]);
    ]
