(* Multi-process integration test: a live 3-process cluster — two home
   servers owning one base table each, one compute server running the
   Twip timeline join — started from the real pequod_server binary with
   --partition routes, talked to through Net_client.

   Checks the §2.4 protocol end to end over real TCP:
   - a put on a home server is readable via a scan on the compute server
     (Fetch + Subscribed snapshot),
   - later writes reach the compute server without rescanning from
     scratch (Notify_batch push),
   - a killed home triggers bounded client retries surfaced in
     net.client.retries and an Error response, not a crash,
   - a respawned home (same port) heals the route on the next scan,
   - the Sub_check heartbeat detects the subscription lost with the old
     process and re-subscribes, unfreezing already-present ranges. *)

module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

let check_bool = Alcotest.(check bool)

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let server_exe () =
  let candidates =
    [ "../bin/pequod_server.exe"; "bin/pequod_server.exe";
      "_build/default/bin/pequod_server.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> Alcotest.fail "pequod_server.exe not built"

(* start a server process with its stdout piped back, so the parent can
   read the "listening on port N" line (the only stdout line it emits) *)
let spawn args =
  let exe = server_exe () in
  let r, w = Unix.pipe () in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin w Unix.stderr in
  Unix.close w;
  (pid, r)

let digits_after s prefix =
  let rec find i =
    if i + String.length prefix > String.length s then None
    else if String.sub s i (String.length prefix) = prefix then Some (i + String.length prefix)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < String.length s && match s.[!stop] with '0' .. '9' -> true | _ -> false
    do
      incr stop
    done;
    if !stop > start then int_of_string_opt (String.sub s start (!stop - start)) else None

let read_port fd =
  let acc = Buffer.create 256 in
  let b = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    match digits_after (Buffer.contents acc) "listening on port " with
    | Some port -> port
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not report its port";
      (match Unix.select [ fd ] [] [] 1.0 with
      | [ _ ], _, _ ->
        let n = Unix.read fd b 0 (Bytes.length b) in
        if n = 0 then Alcotest.fail "server exited before reporting its port";
        Buffer.add_subbytes acc b 0 n
      | _ -> ());
      go ()
  in
  go ()

let poll ~timeout ~what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let counter_of client name =
  match Net_client.call client Message.Stats_full with
  | Message.Metrics metrics -> (
    match List.assoc_opt name metrics with
    | Some (Obs.Counter n) | Some (Obs.Gauge n) -> n
    | _ -> 0)
  | _ -> 0

let scan_pairs client lo hi =
  match Net_client.call client (Message.Scan { lo; hi }) with
  | Message.Pairs pairs -> Ok pairs
  | Message.Error msg -> Error msg
  | _ -> Alcotest.fail "unexpected scan response"

let put_ok client k v =
  match Net_client.call client (Message.Put (k, v)) with
  | Message.Done -> ()
  | Message.Error msg -> Alcotest.failf "put %s failed: %s" k msg
  | _ -> Alcotest.fail "unexpected put response"

let test_cluster () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      (* two homes (plain stores) + one compute server running the join,
         each base table routed to its owning home *)
      let _, port_a = start [ "--port"; "0" ] in
      let _, port_b = start [ "--port"; "0" ] in
      let pid_b = List.hd !pids in
      let _, port_c =
        start
          [ "--port"; "0"; "--join"; timeline_join;
            "--partition"; Printf.sprintf "s@127.0.0.1:%d" port_a;
            "--partition"; Printf.sprintf "p@127.0.0.1:%d" port_b ]
      in
      let home_a = client port_a in
      let home_b = client port_b in
      let compute = client port_c in

      (* write through the homes, read through the compute server: the
         first scan fetches both base ranges and subscribes *)
      put_ok home_a "s|ann|bob" "1";
      put_ok home_b "p|bob|0000000100" "hi";
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok [ ("t|ann|0000000100|bob", "hi") ] -> ()
      | Ok pairs -> Alcotest.failf "first scan: %d pairs" (List.length pairs)
      | Error msg -> Alcotest.failf "first scan failed: %s" msg);
      check_bool "home A served a fetch" true (counter_of home_a "peer.fetch.in" >= 1);

      (* freshness: a later post on home B must reach the compute
         server's materialized timeline via the subscription push,
         without the compute server refetching *)
      put_ok home_b "p|bob|0000000200" "yo";
      poll ~timeout:10.0 ~what:"notify push to reach the compute timeline" (fun () ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok [ ("t|ann|0000000100|bob", "hi"); ("t|ann|0000000200|bob", "yo") ] -> true
          | Ok _ -> false
          | Error msg -> Alcotest.failf "scan during push wait: %s" msg);
      check_bool "push arrived as Notify_batch" true
        (counter_of compute "peer.notify.in" >= 1);

      (* kill home B: a scan needing a new p range gets a bounded-retry
         Error, already-fetched data stays readable, nothing crashes *)
      Unix.kill pid_b Sys.sigkill;
      ignore (Unix.waitpid [] pid_b);
      put_ok home_a "s|dee|liz" "1";
      (* first scan finds the cached connection dead; the second goes
         through the bounded-backoff reconnect path *)
      (match scan_pairs compute "t|dee|" "t|dee}" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "scan through a dead home must report an error");
      (match scan_pairs compute "t|dee|" "t|dee}" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "second scan through a dead home must report an error");
      check_bool "retries surfaced in net.client.retries" true
        (counter_of compute "net.client.retries" >= 1);
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok (_ :: _) -> ()
      | Ok [] -> Alcotest.fail "present ranges lost after peer death"
      | Error msg -> Alcotest.failf "old timeline unreadable after peer death: %s" msg);

      (* respawn home B on the same port: the next scan refetches the
         missing range from the new process and heals the route *)
      let _, port_b2 = start [ "--port"; string_of_int port_b ] in
      check_bool "respawned on the same port" true (port_b2 = port_b);
      (* the old client's cached connection is stale; the call after the
         failure reconnects to the new process *)
      (try put_ok home_b "p|liz|0000000300" "back"
       with Net_client.Net_error _ -> put_ok home_b "p|liz|0000000300" "back");
      poll ~timeout:10.0 ~what:"recovery through the respawned home" (fun () ->
          match scan_pairs compute "t|dee|" "t|dee}" with
          | Ok [ ("t|dee|0000000300|liz", "back") ] -> true
          | Ok _ -> false
          | Error _ -> false);

      (* subscription healing: the compute server's p|bob subscription
         died with the old home B process, yet the range is still marked
         present — without repair, t|ann would serve its frozen copy
         forever. The periodic Sub_check notices the respawned home does
         not know this subscriber, refetches, and re-subscribes, so a
         write to the NEW process reaches the timeline. *)
      put_ok home_b "p|bob|0000000400" "anew";
      poll ~timeout:15.0 ~what:"sub_check healing after the home respawn" (fun () ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok pairs -> List.mem_assoc "t|ann|0000000400|bob" pairs
          | Error _ -> false);
      check_bool "loss detected and counted" true (counter_of compute "peer.sub.lost" >= 1))

let () =
  Alcotest.run "net-cluster"
    [ ("three-process", [ Alcotest.test_case "fetch/subscribe/push" `Quick test_cluster ]) ]
