(* Multi-process integration test: a live 3-process cluster — two home
   servers owning one base table each, one compute server running the
   Twip timeline join — started from the real pequod_server binary with
   --partition routes, talked to through Net_client.

   Checks the §2.4 protocol end to end over real TCP:
   - a put on a home server is readable via a scan on the compute server
     (Fetch + Subscribed snapshot),
   - later writes reach the compute server without rescanning from
     scratch (Notify_batch push),
   - a killed home triggers an Error response (the parked scan's fetch
     fails fast, surfaced in scan.parked), not a crash,
   - a respawned home (same port) heals the route on the next scan,
   - the Sub_check heartbeat detects the subscription lost with the old
     process and re-subscribes, unfreezing already-present ranges. *)

module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

let check_bool = Alcotest.(check bool)

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let server_exe () =
  let candidates =
    [ "../bin/pequod_server.exe"; "bin/pequod_server.exe";
      "_build/default/bin/pequod_server.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> Alcotest.fail "pequod_server.exe not built"

(* start a server process with its stdout piped back, so the parent can
   read the "listening on port N" line (the only stdout line it emits) *)
let spawn args =
  let exe = server_exe () in
  let r, w = Unix.pipe () in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin w Unix.stderr in
  Unix.close w;
  (pid, r)

let digits_after s prefix =
  let rec find i =
    if i + String.length prefix > String.length s then None
    else if String.sub s i (String.length prefix) = prefix then Some (i + String.length prefix)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < String.length s && match s.[!stop] with '0' .. '9' -> true | _ -> false
    do
      incr stop
    done;
    if !stop > start then int_of_string_opt (String.sub s start (!stop - start)) else None

let read_port fd =
  let acc = Buffer.create 256 in
  let b = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    match digits_after (Buffer.contents acc) "listening on port " with
    | Some port -> port
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not report its port";
      (match Unix.select [ fd ] [] [] 1.0 with
      | [ _ ], _, _ ->
        let n = Unix.read fd b 0 (Bytes.length b) in
        if n = 0 then Alcotest.fail "server exited before reporting its port";
        Buffer.add_subbytes acc b 0 n
      | _ -> ());
      go ()
  in
  go ()

let poll ~timeout ~what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let counter_of client name =
  match Net_client.call client Message.Stats_full with
  | Message.Metrics metrics -> (
    match List.assoc_opt name metrics with
    | Some (Obs.Counter n) | Some (Obs.Gauge n) -> n
    | _ -> 0)
  | _ -> 0

let scan_pairs client lo hi =
  match Net_client.call client (Message.Scan { lo; hi }) with
  | Message.Pairs pairs -> Ok pairs
  | Message.Error msg -> Error msg
  | _ -> Alcotest.fail "unexpected scan response"

let put_ok client k v =
  match Net_client.call client (Message.Put (k, v)) with
  | Message.Done -> ()
  | Message.Error msg -> Alcotest.failf "put %s failed: %s" k msg
  | _ -> Alcotest.fail "unexpected put response"

let test_cluster () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      (* two homes (plain stores) + one compute server running the join,
         each base table routed to its owning home *)
      let _, port_a = start [ "--port"; "0" ] in
      let _, port_b = start [ "--port"; "0" ] in
      let pid_b = List.hd !pids in
      let _, port_c =
        start
          [ "--port"; "0"; "--join"; timeline_join;
            "--partition"; Printf.sprintf "s@127.0.0.1:%d" port_a;
            "--partition"; Printf.sprintf "p@127.0.0.1:%d" port_b ]
      in
      let home_a = client port_a in
      let home_b = client port_b in
      let compute = client port_c in

      (* write through the homes, read through the compute server: the
         first scan fetches both base ranges and subscribes *)
      put_ok home_a "s|ann|bob" "1";
      put_ok home_b "p|bob|0000000100" "hi";
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok [ ("t|ann|0000000100|bob", "hi") ] -> ()
      | Ok pairs -> Alcotest.failf "first scan: %d pairs" (List.length pairs)
      | Error msg -> Alcotest.failf "first scan failed: %s" msg);
      check_bool "home A served a fetch" true (counter_of home_a "peer.fetch.in" >= 1);

      (* freshness: a later post on home B must reach the compute
         server's materialized timeline via the subscription push,
         without the compute server refetching *)
      put_ok home_b "p|bob|0000000200" "yo";
      poll ~timeout:10.0 ~what:"notify push to reach the compute timeline" (fun () ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok [ ("t|ann|0000000100|bob", "hi"); ("t|ann|0000000200|bob", "yo") ] -> true
          | Ok _ -> false
          | Error msg -> Alcotest.failf "scan during push wait: %s" msg);
      check_bool "push arrived as Notify_batch" true
        (counter_of compute "peer.notify.in" >= 1);

      (* kill home B: a scan needing a new p range gets a bounded-retry
         Error, already-fetched data stays readable, nothing crashes *)
      Unix.kill pid_b Sys.sigkill;
      ignore (Unix.waitpid [] pid_b);
      put_ok home_a "s|dee|liz" "1";
      (* first scan finds the cached connection dead; the second goes
         through the bounded-backoff reconnect path *)
      (match scan_pairs compute "t|dee|" "t|dee}" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "scan through a dead home must report an error");
      (match scan_pairs compute "t|dee|" "t|dee}" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "second scan through a dead home must report an error");
      (* asynchronous read path: the miss parked and the fetch engine
         failed it fast (dead-peer backoff), no blocking client retry *)
      check_bool "failed scans were parked" true
        (counter_of compute "scan.parked" >= 1);
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok (_ :: _) -> ()
      | Ok [] -> Alcotest.fail "present ranges lost after peer death"
      | Error msg -> Alcotest.failf "old timeline unreadable after peer death: %s" msg);

      (* respawn home B on the same port: the next scan refetches the
         missing range from the new process and heals the route *)
      let _, port_b2 = start [ "--port"; string_of_int port_b ] in
      check_bool "respawned on the same port" true (port_b2 = port_b);
      (* the old client's cached connection is stale; the call after the
         failure reconnects to the new process *)
      (try put_ok home_b "p|liz|0000000300" "back"
       with Net_client.Net_error _ -> put_ok home_b "p|liz|0000000300" "back");
      poll ~timeout:10.0 ~what:"recovery through the respawned home" (fun () ->
          match scan_pairs compute "t|dee|" "t|dee}" with
          | Ok [ ("t|dee|0000000300|liz", "back") ] -> true
          | Ok _ -> false
          | Error _ -> false);

      (* subscription healing: the compute server's p|bob subscription
         died with the old home B process, yet the range is still marked
         present — without repair, t|ann would serve its frozen copy
         forever. The periodic Sub_check notices the respawned home does
         not know this subscriber, refetches, and re-subscribes, so a
         write to the NEW process reaches the timeline. *)
      put_ok home_b "p|bob|0000000400" "anew";
      poll ~timeout:15.0 ~what:"sub_check healing after the home respawn" (fun () ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok pairs -> List.mem_assoc "t|ann|0000000400|bob" pairs
          | Error _ -> false);
      check_bool "loss detected and counted" true (counter_of compute "peer.sub.lost" >= 1))

(* ------------------------------------------------------------------ *)
(* Directory mode: live migration and its crash-safety.                *)

let dir_state client =
  match Net_client.call client Message.Dir_get with
  | Message.Dir_state { epoch; entries } -> (epoch, entries)
  | Message.Error msg -> Alcotest.failf "Dir_get failed: %s" msg
  | _ -> Alcotest.fail "unexpected Dir_get response"

let get_value client k =
  match Net_client.call client (Message.Get k) with
  | Message.Value v -> Ok v
  | Message.Error msg -> Error msg
  | _ -> Alcotest.fail "unexpected get response"

(* A seed home owning table s, one follower. Migrate the upper half of
   the table to the follower under a live client, then check the
   directory flipped exactly once, both halves stay readable from BOTH
   servers (forwarded or local), and a write through the OLD home lands
   at the new one — the directory, not the process you happened to dial,
   decides placement. *)
let test_migrate_then_verify () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      (* the seed homes the whole table at itself (bare spec, no @addr) *)
      let _, port_a = start [ "--port"; "0"; "--dir-host"; "--partition"; "s" ] in
      let addr_a = Printf.sprintf "127.0.0.1:%d" port_a in
      let _, port_b = start [ "--port"; "0"; "--directory"; addr_a ] in
      let addr_b = Printf.sprintf "127.0.0.1:%d" port_b in
      let home_a = client port_a in
      let home_b = client port_b in

      for i = 1 to 99 do
        put_ok home_a (Printf.sprintf "s|u%03d" i) (Printf.sprintf "v%03d" i)
      done;
      check_bool "seed starts at epoch 1" true (fst (dir_state home_a) = 1);

      (match
         Net_client.call home_a
           (Message.Migrate { table = "s"; lo = "s|u050"; hi = "s}"; dest = addr_b })
       with
      | Message.Pairs stats ->
        check_bool "keys_moved reported" true
          (List.assoc_opt "keys_moved" stats = Some "50")
      | Message.Error msg -> Alcotest.failf "migrate failed: %s" msg
      | _ -> Alcotest.fail "unexpected migrate response");

      (* the flip is one epoch step and splits the range at the cut *)
      let epoch, entries = dir_state home_a in
      check_bool "epoch flipped once" true (epoch = 2);
      check_bool "range split at the cut" true
        (List.map
           (fun (e : Message.dir_entry) -> (e.de_lo, e.de_hi, e.de_home))
           entries
        = [ ("s|", "s|u050", addr_a); ("s|u050", "s}", addr_b) ]);

      (* both halves readable through EITHER server: low key via B is
         forwarded to A, high key via A is forwarded to B *)
      poll ~timeout:10.0 ~what:"follower to adopt the new epoch" (fun () ->
          fst (dir_state home_b) = 2);
      check_bool "low key via new home (forwarded)" true
        (get_value home_b "s|u010" = Ok (Some "v010"));
      check_bool "high key via old home (forwarded)" true
        (get_value home_a "s|u075" = Ok (Some "v075"));
      check_bool "high key via new home (local)" true
        (get_value home_b "s|u075" = Ok (Some "v075"));

      (* a write through the OLD home must land at the new one *)
      put_ok home_a "s|u075" "v075-after-move";
      check_bool "write through old home lands at new home" true
        (get_value home_b "s|u075" = Ok (Some "v075-after-move"));

      (* a scan spanning the cut stitches both homes together *)
      match scan_pairs home_b "s|u048" "s|u052" with
      | Ok [ ("s|u048", _); ("s|u049", _); ("s|u050", _); ("s|u051", _) ] -> ()
      | Ok pairs -> Alcotest.failf "cross-home scan: %d pairs" (List.length pairs)
      | Error msg -> Alcotest.failf "cross-home scan failed: %s" msg)

(* kill -9 the source mid-migration: the directory epoch must NEVER
   advertise a half-moved range. The followers keep routing to the dead
   source (reads error; they do not silently serve the partial copy the
   destination holds), and the epoch stays put. *)
let test_migration_crash_safety () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      let pid_a, port_a = start [ "--port"; "0"; "--dir-host"; "--partition"; "s" ] in
      let addr_a = Printf.sprintf "127.0.0.1:%d" port_a in
      let _, port_b = start [ "--port"; "0"; "--directory"; addr_a ] in
      let addr_b = Printf.sprintf "127.0.0.1:%d" port_b in
      let _, port_c = start [ "--port"; "0"; "--directory"; addr_a ] in
      let home_a = client port_a in
      let home_b = client port_b in
      let observer = client port_c in

      (* enough keys that the copy takes many pump chunks: the kill below
         is guaranteed to land mid-migration, never after the flip *)
      let batch = ref [] in
      for i = 1 to 200_000 do
        batch := (Printf.sprintf "s|u%06d" i, "v") :: !batch;
        if i mod 1_000 = 0 then begin
          (match Net_client.call home_a (Message.Put_batch !batch) with
          | Message.Done -> ()
          | Message.Error msg -> Alcotest.failf "preload failed: %s" msg
          | _ -> Alcotest.fail "unexpected put_batch response");
          batch := []
        end
      done;
      poll ~timeout:10.0 ~what:"followers to fetch the directory" (fun () ->
          fst (dir_state home_b) = 1 && fst (dir_state observer) = 1);

      (* fire the migration from a forked child (the call blocks until
         the flip, which must never come) and kill -9 the source while
         the snapshot copy is in flight *)
      let mig_pid = Unix.fork () in
      if mig_pid = 0 then begin
        (try
           let c = Net_client.create ~host:"127.0.0.1" ~port:port_a () in
           ignore
             (Net_client.call c
                (Message.Migrate
                   { table = "s"; lo = "s|u000001"; hi = "s}"; dest = addr_b }))
         with _ -> ());
        Unix._exit 0
      end;
      pids := mig_pid :: !pids;
      Unix.sleepf 0.03;
      Unix.kill pid_a Sys.sigkill;
      ignore (Unix.waitpid [] pid_a);

      (* the followers' directory copies must keep the pre-migration
         truth — epoch 1, the whole range homed at the (dead) source —
         not just immediately but after their polls run too *)
      let assert_unchanged who c =
        let epoch, entries = dir_state c in
        check_bool (who ^ " epoch unchanged") true (epoch = 1);
        check_bool (who ^ " still homes the range at the source") true
          (List.for_all (fun (e : Message.dir_entry) -> e.de_home = addr_a) entries)
      in
      assert_unchanged "follower" home_b;
      assert_unchanged "observer" observer;
      Unix.sleepf 1.5 (* two poll intervals *);
      assert_unchanged "follower (after polls)" home_b;
      assert_unchanged "observer (after polls)" observer;

      (* reads of the half-moved range error out rather than serving the
         destination's partial copy *)
      match get_value home_b "s|u100000" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read of a half-migrated range served silently")

let () =
  Alcotest.run "net-cluster"
    [
      ("three-process", [ Alcotest.test_case "fetch/subscribe/push" `Quick test_cluster ]);
      ( "directory",
        [
          Alcotest.test_case "migrate then verify" `Quick test_migrate_then_verify;
          Alcotest.test_case "kill -9 source mid-migration" `Quick
            test_migration_crash_safety;
        ] );
    ]
