(* Multi-process integration test: a live 3-process cluster — two home
   servers owning one base table each, one compute server running the
   Twip timeline join — started from the real pequod_server binary with
   --partition routes, talked to through Net_client.

   Checks the §2.4 protocol end to end over real TCP:
   - a put on a home server is readable via a scan on the compute server
     (Fetch + Subscribed snapshot),
   - later writes reach the compute server without rescanning from
     scratch (Notify_batch push),
   - a killed home triggers an Error response (the parked scan's fetch
     fails fast, surfaced in scan.parked), not a crash,
   - a respawned home (same port) heals the route on the next scan,
   - the Sub_check heartbeat detects the subscription lost with the old
     process and re-subscribes, unfreezing already-present ranges. *)

module Message = Pequod_proto.Message
module Net_client = Pequod_server_lib.Net_client

let check_bool = Alcotest.(check bool)

let timeline_join = "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>"

let server_exe () =
  let candidates =
    [ "../bin/pequod_server.exe"; "bin/pequod_server.exe";
      "_build/default/bin/pequod_server.exe" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some exe -> exe
  | None -> Alcotest.fail "pequod_server.exe not built"

(* start a server process with its stdout piped back, so the parent can
   read the "listening on port N" line (the only stdout line it emits) *)
let spawn args =
  let exe = server_exe () in
  let r, w = Unix.pipe () in
  let pid = Unix.create_process exe (Array.of_list (exe :: args)) Unix.stdin w Unix.stderr in
  Unix.close w;
  (pid, r)

let digits_after s prefix =
  let rec find i =
    if i + String.length prefix > String.length s then None
    else if String.sub s i (String.length prefix) = prefix then Some (i + String.length prefix)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    let stop = ref start in
    while
      !stop < String.length s && match s.[!stop] with '0' .. '9' -> true | _ -> false
    do
      incr stop
    done;
    if !stop > start then int_of_string_opt (String.sub s start (!stop - start)) else None

let read_port fd =
  let acc = Buffer.create 256 in
  let b = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 20.0 in
  let rec go () =
    match digits_after (Buffer.contents acc) "listening on port " with
    | Some port -> port
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "server did not report its port";
      (match Unix.select [ fd ] [] [] 1.0 with
      | [ _ ], _, _ ->
        let n = Unix.read fd b 0 (Bytes.length b) in
        if n = 0 then Alcotest.fail "server exited before reporting its port";
        Buffer.add_subbytes acc b 0 n
      | _ -> ());
      go ()
  in
  go ()

let poll ~timeout ~what f =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if f () then ()
    else if Unix.gettimeofday () > deadline then Alcotest.failf "timed out waiting for %s" what
    else begin
      Unix.sleepf 0.05;
      go ()
    end
  in
  go ()

let counter_of client name =
  match Net_client.call client Message.Stats_full with
  | Message.Metrics metrics -> (
    match List.assoc_opt name metrics with
    | Some (Obs.Counter n) | Some (Obs.Gauge n) -> n
    | _ -> 0)
  | _ -> 0

let scan_pairs client lo hi =
  match Net_client.call client (Message.Scan { lo; hi }) with
  | Message.Pairs pairs -> Ok pairs
  | Message.Error msg -> Error msg
  | _ -> Alcotest.fail "unexpected scan response"

let put_ok client k v =
  match Net_client.call client (Message.Put (k, v)) with
  | Message.Done | Message.Stamps _ -> ()
  | Message.Error msg -> Alcotest.failf "put %s failed: %s" k msg
  | _ -> Alcotest.fail "unexpected put response"

let test_cluster () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      (* two homes (plain stores) + one compute server running the join,
         each base table routed to its owning home *)
      let _, port_a = start [ "--port"; "0" ] in
      let _, port_b = start [ "--port"; "0" ] in
      let pid_b = List.hd !pids in
      let _, port_c =
        start
          [ "--port"; "0"; "--join"; timeline_join;
            "--partition"; Printf.sprintf "s@127.0.0.1:%d" port_a;
            "--partition"; Printf.sprintf "p@127.0.0.1:%d" port_b ]
      in
      let home_a = client port_a in
      let home_b = client port_b in
      let compute = client port_c in

      (* write through the homes, read through the compute server: the
         first scan fetches both base ranges and subscribes *)
      put_ok home_a "s|ann|bob" "1";
      put_ok home_b "p|bob|0000000100" "hi";
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok [ ("t|ann|0000000100|bob", "hi") ] -> ()
      | Ok pairs -> Alcotest.failf "first scan: %d pairs" (List.length pairs)
      | Error msg -> Alcotest.failf "first scan failed: %s" msg);
      check_bool "home A served a fetch" true (counter_of home_a "peer.fetch.in" >= 1);

      (* freshness: a later post on home B must reach the compute
         server's materialized timeline via the subscription push,
         without the compute server refetching *)
      put_ok home_b "p|bob|0000000200" "yo";
      poll ~timeout:10.0 ~what:"notify push to reach the compute timeline" (fun () ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok [ ("t|ann|0000000100|bob", "hi"); ("t|ann|0000000200|bob", "yo") ] -> true
          | Ok _ -> false
          | Error msg -> Alcotest.failf "scan during push wait: %s" msg);
      check_bool "push arrived as Notify_batch" true
        (counter_of compute "peer.notify.in" >= 1);

      (* kill home B: a scan needing a new p range gets a bounded-retry
         Error, already-fetched data stays readable, nothing crashes *)
      Unix.kill pid_b Sys.sigkill;
      ignore (Unix.waitpid [] pid_b);
      put_ok home_a "s|dee|liz" "1";
      (* first scan finds the cached connection dead; the second goes
         through the bounded-backoff reconnect path *)
      (match scan_pairs compute "t|dee|" "t|dee}" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "scan through a dead home must report an error");
      (match scan_pairs compute "t|dee|" "t|dee}" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "second scan through a dead home must report an error");
      (* asynchronous read path: the miss parked and the fetch engine
         failed it fast (dead-peer backoff), no blocking client retry *)
      check_bool "failed scans were parked" true
        (counter_of compute "scan.parked" >= 1);
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok (_ :: _) -> ()
      | Ok [] -> Alcotest.fail "present ranges lost after peer death"
      | Error msg -> Alcotest.failf "old timeline unreadable after peer death: %s" msg);

      (* respawn home B on the same port: the next scan refetches the
         missing range from the new process and heals the route *)
      let _, port_b2 = start [ "--port"; string_of_int port_b ] in
      check_bool "respawned on the same port" true (port_b2 = port_b);
      (* the old client's cached connection is stale; the call after the
         failure reconnects to the new process *)
      (try put_ok home_b "p|liz|0000000300" "back"
       with Net_client.Net_error _ -> put_ok home_b "p|liz|0000000300" "back");
      poll ~timeout:10.0 ~what:"recovery through the respawned home" (fun () ->
          match scan_pairs compute "t|dee|" "t|dee}" with
          | Ok [ ("t|dee|0000000300|liz", "back") ] -> true
          | Ok _ -> false
          | Error _ -> false);

      (* subscription healing: the compute server's p|bob subscription
         died with the old home B process, yet the range is still marked
         present — without repair, t|ann would serve its frozen copy
         forever. The periodic Sub_check notices the respawned home does
         not know this subscriber, refetches, and re-subscribes, so a
         write to the NEW process reaches the timeline. *)
      put_ok home_b "p|bob|0000000400" "anew";
      poll ~timeout:15.0 ~what:"sub_check healing after the home respawn" (fun () ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok pairs -> List.mem_assoc "t|ann|0000000400|bob" pairs
          | Error _ -> false);
      check_bool "loss detected and counted" true (counter_of compute "peer.sub.lost" >= 1))

(* ------------------------------------------------------------------ *)
(* Directory mode: live migration and its crash-safety.                *)

let dir_state client =
  match Net_client.call client Message.Dir_get with
  | Message.Dir_state { epoch; entries } -> (epoch, entries)
  | Message.Error msg -> Alcotest.failf "Dir_get failed: %s" msg
  | _ -> Alcotest.fail "unexpected Dir_get response"

let get_value client k =
  match Net_client.call client (Message.Get k) with
  | Message.Value v -> Ok v
  | Message.Error msg -> Error msg
  | _ -> Alcotest.fail "unexpected get response"

(* A seed home owning table s, one follower. Migrate the upper half of
   the table to the follower under a live client, then check the
   directory flipped exactly once, both halves stay readable from BOTH
   servers (forwarded or local), and a write through the OLD home lands
   at the new one — the directory, not the process you happened to dial,
   decides placement. *)
let test_migrate_then_verify () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      (* the seed homes the whole table at itself (bare spec, no @addr) *)
      let _, port_a = start [ "--port"; "0"; "--dir-host"; "--partition"; "s" ] in
      let addr_a = Printf.sprintf "127.0.0.1:%d" port_a in
      let _, port_b = start [ "--port"; "0"; "--directory"; addr_a ] in
      let addr_b = Printf.sprintf "127.0.0.1:%d" port_b in
      let home_a = client port_a in
      let home_b = client port_b in

      for i = 1 to 99 do
        put_ok home_a (Printf.sprintf "s|u%03d" i) (Printf.sprintf "v%03d" i)
      done;
      check_bool "seed starts at epoch 1" true (fst (dir_state home_a) = 1);

      (match
         Net_client.call home_a
           (Message.Migrate { table = "s"; lo = "s|u050"; hi = "s}"; dest = addr_b })
       with
      | Message.Pairs stats ->
        check_bool "keys_moved reported" true
          (List.assoc_opt "keys_moved" stats = Some "50")
      | Message.Error msg -> Alcotest.failf "migrate failed: %s" msg
      | _ -> Alcotest.fail "unexpected migrate response");

      (* the flip is one epoch step and splits the range at the cut *)
      let epoch, entries = dir_state home_a in
      check_bool "epoch flipped once" true (epoch = 2);
      check_bool "range split at the cut" true
        (List.map
           (fun (e : Message.dir_entry) -> (e.de_lo, e.de_hi, e.de_home))
           entries
        = [ ("s|", "s|u050", addr_a); ("s|u050", "s}", addr_b) ]);

      (* both halves readable through EITHER server: low key via B is
         forwarded to A, high key via A is forwarded to B *)
      poll ~timeout:10.0 ~what:"follower to adopt the new epoch" (fun () ->
          fst (dir_state home_b) = 2);
      check_bool "low key via new home (forwarded)" true
        (get_value home_b "s|u010" = Ok (Some "v010"));
      check_bool "high key via old home (forwarded)" true
        (get_value home_a "s|u075" = Ok (Some "v075"));
      check_bool "high key via new home (local)" true
        (get_value home_b "s|u075" = Ok (Some "v075"));

      (* a write through the OLD home must land at the new one *)
      put_ok home_a "s|u075" "v075-after-move";
      check_bool "write through old home lands at new home" true
        (get_value home_b "s|u075" = Ok (Some "v075-after-move"));

      (* a scan spanning the cut stitches both homes together *)
      match scan_pairs home_b "s|u048" "s|u052" with
      | Ok [ ("s|u048", _); ("s|u049", _); ("s|u050", _); ("s|u051", _) ] -> ()
      | Ok pairs -> Alcotest.failf "cross-home scan: %d pairs" (List.length pairs)
      | Error msg -> Alcotest.failf "cross-home scan failed: %s" msg)

(* kill -9 the source mid-migration: the directory epoch must NEVER
   advertise a half-moved range. The followers keep routing to the dead
   source (reads error; they do not silently serve the partial copy the
   destination holds), and the epoch stays put. *)
let test_migration_crash_safety () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      let pid_a, port_a = start [ "--port"; "0"; "--dir-host"; "--partition"; "s" ] in
      let addr_a = Printf.sprintf "127.0.0.1:%d" port_a in
      let _, port_b = start [ "--port"; "0"; "--directory"; addr_a ] in
      let addr_b = Printf.sprintf "127.0.0.1:%d" port_b in
      let _, port_c = start [ "--port"; "0"; "--directory"; addr_a ] in
      let home_a = client port_a in
      let home_b = client port_b in
      let observer = client port_c in

      (* enough keys that the copy takes many pump chunks: the kill below
         is guaranteed to land mid-migration, never after the flip *)
      let batch = ref [] in
      for i = 1 to 200_000 do
        batch := (Printf.sprintf "s|u%06d" i, "v") :: !batch;
        if i mod 1_000 = 0 then begin
          (match Net_client.call home_a (Message.Put_batch !batch) with
          | Message.Done | Message.Stamps _ -> ()
          | Message.Error msg -> Alcotest.failf "preload failed: %s" msg
          | _ -> Alcotest.fail "unexpected put_batch response");
          batch := []
        end
      done;
      poll ~timeout:10.0 ~what:"followers to fetch the directory" (fun () ->
          fst (dir_state home_b) = 1 && fst (dir_state observer) = 1);

      (* fire the migration from a forked child (the call blocks until
         the flip, which must never come) and kill -9 the source while
         the snapshot copy is in flight *)
      let mig_pid = Unix.fork () in
      if mig_pid = 0 then begin
        (try
           let c = Net_client.create ~host:"127.0.0.1" ~port:port_a () in
           ignore
             (Net_client.call c
                (Message.Migrate
                   { table = "s"; lo = "s|u000001"; hi = "s}"; dest = addr_b }))
         with _ -> ());
        Unix._exit 0
      end;
      pids := mig_pid :: !pids;
      Unix.sleepf 0.03;
      Unix.kill pid_a Sys.sigkill;
      ignore (Unix.waitpid [] pid_a);

      (* the followers' directory copies must keep the pre-migration
         truth — epoch 1, the whole range homed at the (dead) source —
         not just immediately but after their polls run too *)
      let assert_unchanged who c =
        let epoch, entries = dir_state c in
        check_bool (who ^ " epoch unchanged") true (epoch = 1);
        check_bool (who ^ " still homes the range at the source") true
          (List.for_all (fun (e : Message.dir_entry) -> e.de_home = addr_a) entries)
      in
      assert_unchanged "follower" home_b;
      assert_unchanged "observer" observer;
      Unix.sleepf 1.5 (* two poll intervals *);
      assert_unchanged "follower (after polls)" home_b;
      assert_unchanged "observer (after polls)" observer;

      (* reads of the half-moved range error out rather than serving the
         destination's partial copy *)
      match get_value home_b "s|u100000" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "read of a half-migrated range served silently")

(* ------------------------------------------------------------------ *)
(* Session consistency (docs/SESSIONS.md): read-your-writes across the
   cluster, asserted without a single poll — the stamped read itself
   must wait, refetch, or fail [Stale]; it never answers early.         *)

module Session = Pequod_server_lib.Session

(* Write through a home, read through TWO compute servers that both
   materialized the timeline BEFORE the write (so each holds a copy the
   push must catch up): a stamped scan demanding the write's ack vector
   must include the new post on the very first call, on whichever
   compute it lands. *)
let test_session_read_your_writes () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      let _, port_s = start [ "--port"; "0" ] in
      let _, port_p = start [ "--port"; "0" ] in
      let compute_args =
        [ "--port"; "0"; "--join"; timeline_join;
          "--partition"; Printf.sprintf "s@127.0.0.1:%d" port_s;
          "--partition"; Printf.sprintf "p@127.0.0.1:%d" port_p ]
      in
      let _, port_c1 = start compute_args in
      let _, port_c2 = start compute_args in
      let home_s = client port_s in
      let home_p = client port_p in
      let compute1 = client port_c1 in
      let compute2 = client port_c2 in

      put_ok home_s "s|ann|bob" "1";
      put_ok home_p "p|bob|0000000100" "hi";
      (* both computes materialize the timeline: present, subscribed
         copies that a later write makes stale until the push lands *)
      List.iter
        (fun compute ->
          match scan_pairs compute "t|ann|" "t|ann}" with
          | Ok [ ("t|ann|0000000100|bob", "hi") ] -> ()
          | Ok pairs -> Alcotest.failf "warm scan: %d pairs" (List.length pairs)
          | Error msg -> Alcotest.failf "warm scan failed: %s" msg)
        [ compute1; compute2 ];

      (* the writing session lives on the home owning p; reader sessions
         on each compute receive its vector via the stamp handoff *)
      let writer = Session.create home_p in
      let reader1 = Session.create compute1 in
      let reader2 = Session.create compute2 in
      check_bool "fresh session demands nothing" true (Session.stamp writer = []);
      for i = 1 to 8 do
        let time = 100 + i in
        let key = Printf.sprintf "p|bob|%010d" time in
        Session.put writer key (Printf.sprintf "post-%d" i);
        check_bool "write ack carried a stamp" true (Session.stamp writer <> []);
        (* alternate computes so both serve stamped reads demanding a
           write they may not have been pushed yet *)
        let reader = if i mod 2 = 0 then reader1 else reader2 in
        Session.with_at_least reader (Session.stamp writer);
        let pairs = Session.scan reader ~lo:"t|ann|" ~hi:"t|ann}" in
        let tkey = Printf.sprintf "t|ann|%010d|bob" time in
        check_bool
          (Printf.sprintf "stamped scan %d sees the write first try" i)
          true
          (List.assoc_opt tkey pairs = Some (Printf.sprintf "post-%d" i))
      done;
      (* Session.get takes the same gate *)
      check_bool "stamped get sees the last write" true
        (Session.get reader1 "t|ann|0000000108|bob" = Some "post-8");
      check_bool "computes served stamped reads" true
        (counter_of compute1 "session.reads" + counter_of compute2 "session.reads" >= 9))

(* A session's guarantee must survive a live migration: acked stamps are
   handed to the new home before the epoch flips (its counter continues,
   never restarts), so post-flip acks stay comparable and a stamped read
   through either server sees the post-flip write. *)
let test_session_across_migration () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      let _, port_a = start [ "--port"; "0"; "--dir-host"; "--partition"; "s" ] in
      let addr_a = Printf.sprintf "127.0.0.1:%d" port_a in
      let _, port_b = start [ "--port"; "0"; "--directory"; addr_a ] in
      let addr_b = Printf.sprintf "127.0.0.1:%d" port_b in
      let home_a = client port_a in
      let home_b = client port_b in

      for i = 1 to 99 do
        put_ok home_a (Printf.sprintf "s|u%03d" i) (Printf.sprintf "v%03d" i)
      done;
      let stamp_covering session key =
        match
          List.find_opt
            (fun (table, lo, hi, _) ->
              table = "s" && String.compare lo key <= 0 && String.compare key hi < 0)
            (Session.stamp session)
        with
        | Some (_, _, _, s) -> s
        | None -> Alcotest.failf "no session stamp covers %s" key
      in
      let writer = Session.create home_a in
      Session.put writer "s|u075" "pre-move";
      let pre_stamp = stamp_covering writer "s|u075" in

      (match
         Net_client.call home_a
           (Message.Migrate { table = "s"; lo = "s|u050"; hi = "s}"; dest = addr_b })
       with
      | Message.Pairs _ -> ()
      | Message.Error msg -> Alcotest.failf "migrate failed: %s" msg
      | _ -> Alcotest.fail "unexpected migrate response");
      poll ~timeout:10.0 ~what:"follower to adopt the new epoch" (fun () ->
          fst (dir_state home_b) = 2);

      (* the same session writes through the OLD home: the write is
         forwarded to the new one and its ack stamp must continue past
         every pre-migration ack — a restarted counter would issue
         stamps the session's accumulated vector already exceeds *)
      Session.put writer "s|u075" "post-move";
      let post_stamp = stamp_covering writer "s|u075" in
      check_bool
        (Printf.sprintf "stamp continues across the flip (%d > %d)" post_stamp pre_stamp)
        true (post_stamp > pre_stamp);

      (* stamped reads demanding the full vector see the post-flip write
         through either server, first try *)
      List.iter
        (fun c ->
          let reader = Session.create c in
          Session.with_at_least reader (Session.stamp writer);
          check_bool "stamped read sees the post-migration write" true
            (Session.get reader "s|u075" = Some "post-move"))
        [ home_a; home_b ])

(* A demand the server cannot prove must fail [Stale], never be served
   from derived data the push never refreshed. Kill the home owning a
   demanded range: a stamped read demanding a version past the
   compute's copy parks, tries to refetch, finds the owner dead and
   answers the typed [Stale] — while plain (eventual) reads keep
   serving the old timeline. A respawned owner then heals the next
   stamped read end to end. *)
let test_session_stale_on_dead_owner () =
  let pids = ref [] in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun c -> try Net_client.close c with _ -> ()) !clients;
      List.iter
        (fun pid ->
          (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
          try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ())
        !pids)
    (fun () ->
      let start args =
        let pid, out = spawn args in
        pids := pid :: !pids;
        let port = read_port out in
        (pid, port)
      in
      let client port =
        let c = Net_client.create ~host:"127.0.0.1" ~port () in
        clients := c :: !clients;
        c
      in
      let _, port_s = start [ "--port"; "0" ] in
      let pid_p, port_p = start [ "--port"; "0" ] in
      let _, port_c =
        start
          [ "--port"; "0"; "--join"; timeline_join;
            "--partition"; Printf.sprintf "s@127.0.0.1:%d" port_s;
            "--partition"; Printf.sprintf "p@127.0.0.1:%d" port_p ]
      in
      let home_s = client port_s in
      let home_p = client port_p in
      let compute = client port_c in

      put_ok home_s "s|ann|bob" "1";
      let writer = Session.create home_p in
      Session.put writer "p|bob|0000000100" "hi";
      (* the compute materializes the timeline: a present, subscribed
         copy of the p|bob| slice with the ack's stamp recorded *)
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok [ ("t|ann|0000000100|bob", "hi") ] -> ()
      | Ok pairs -> Alcotest.failf "warm scan: %d pairs" (List.length pairs)
      | Error msg -> Alcotest.failf "warm scan failed: %s" msg);
      let reader = Session.create compute in
      Session.with_at_least reader (Session.stamp writer);
      check_bool "stamped scan satisfied by the caught-up copy" true
        (List.mem_assoc "t|ann|0000000100|bob"
           (Session.scan reader ~lo:"t|ann|" ~hi:"t|ann}"));

      (* kill the owner, then demand one version past anything the
         compute holds — the shape of an acked write whose push died
         with its home. Serving the resident timeline would present
         stale data as fresh; the only honest answer is [Stale]. *)
      Unix.kill pid_p Sys.sigkill;
      ignore (Unix.waitpid [] pid_p);
      Session.with_at_least reader
        (List.map (fun (t, lo, hi, s) -> (t, lo, hi, s + 1)) (Session.stamp writer));
      (match Session.scan reader ~lo:"t|ann|" ~hi:"t|ann}" with
      | pairs ->
        Alcotest.failf "unprovable demand served %d pairs instead of Stale"
          (List.length pairs)
      | exception Session.Stale (_ :: _) -> ());
      check_bool "stale failure counted" true
        (counter_of compute "session.stale_errors" >= 1);
      (* eventual-mode reads are untouched: the old timeline still serves *)
      (match scan_pairs compute "t|ann|" "t|ann}" with
      | Ok pairs ->
        check_bool "plain scan still serves the old copy" true
          (List.mem_assoc "t|ann|0000000100|bob" pairs)
      | Error msg -> Alcotest.failf "plain scan failed: %s" msg);

      (* a respawned owner makes demands provable again: the dropped
         slice refetches from the live process during the stamped read *)
      let _, port_p2 = start [ "--port"; string_of_int port_p ] in
      check_bool "respawned on the same port" true (port_p2 = port_p);
      let writer2 = Session.create (client port_p) in
      Session.put writer2 "p|bob|0000000100" "hi";
      Session.put writer2 "p|bob|0000000200" "again";
      let reader2 = Session.create compute in
      Session.with_at_least reader2 (Session.stamp writer2);
      (* the fetcher's dead-peer backoff may still cover the respawned
         port for a moment; Stale is retryable by contract *)
      poll ~timeout:10.0 ~what:"stamped read healing through the respawned owner"
        (fun () ->
          match Session.scan reader2 ~lo:"t|ann|" ~hi:"t|ann}" with
          | pairs -> List.mem_assoc "t|ann|0000000200|bob" pairs
          | exception Session.Stale _ -> false))

let () =
  Alcotest.run "net-cluster"
    [
      ("three-process", [ Alcotest.test_case "fetch/subscribe/push" `Quick test_cluster ]);
      ( "directory",
        [
          Alcotest.test_case "migrate then verify" `Quick test_migrate_then_verify;
          Alcotest.test_case "kill -9 source mid-migration" `Quick
            test_migration_crash_safety;
        ] );
      ( "session",
        [
          Alcotest.test_case "read-your-writes across computes" `Quick
            test_session_read_your_writes;
          Alcotest.test_case "session across live migrate" `Quick
            test_session_across_migration;
          Alcotest.test_case "stale on dead owner" `Quick
            test_session_stale_on_dead_owner;
        ] );
    ]
