#!/bin/sh
# Assert that a pequod_load run produced a complete BENCH_cluster.json:
# non-empty, provenance-stamped, and carrying every key the cross-PR
# tracking reads (qps, per-op-class latency percentiles, subscription
# traffic share). Usage: check_bench_cluster.sh [path]
set -eu

f="${1:-BENCH_cluster.json}"

if [ ! -s "$f" ]; then
  echo "FAIL: $f missing or empty" >&2
  exit 1
fi

status=0
for key in '"benchmark"' '"cluster"' '"commit"' '"date"' '"qps"' \
  '"ops_completed"' '"subscription_share"' '"latency_us"' \
  '"login"' '"check"' '"subscribe"' '"post"' '"p50"' '"p95"' '"p99"' \
  '"shards"' '"nproc"' \
  '"fetch_per_read"' '"fetch_wait_p50_us"' '"fetch_wait_p95_us"' \
  '"fetch_wait_p99_us"' '"scan_parked"' '"fetch_coalesced"' \
  '"sessions"' '"stale_read_rate"' '"stale_reads"' '"fresh_reads"' \
  '"session_reads"'; do
  if ! grep -q "$key" "$f"; then
    echo "FAIL: $f lacks $key" >&2
    status=1
  fi
done

if grep -q '"ops_completed": 0' "$f"; then
  echo "FAIL: $f reports zero completed ops" >&2
  status=1
fi

# shard-per-core runs additionally carry the per-shard op split, and a
# multi-shard run its measured --shards 1 comparison
if grep -q '"shards": 0' "$f"; then
  :
else
  if ! grep -q '"per_shard_ops"' "$f"; then
    echo "FAIL: $f is a --shards run but lacks per_shard_ops" >&2
    status=1
  fi
  if ! grep -q '"shards": 1' "$f"; then
    for key in '"baseline_shards1"' '"shard_speedup"'; do
      if ! grep -q "$key" "$f"; then
        echo "FAIL: $f is a multi-shard run but lacks $key" >&2
        status=1
      fi
    done
  fi
fi

[ "$status" -eq 0 ] && echo "OK: $f has all expected keys"
exit "$status"
