#!/bin/sh
# Check that every relative markdown link in the repo's documentation
# resolves to an existing file. External (http/https/mailto) links and
# pure #fragment links are skipped; a #fragment on a relative link is
# stripped before the existence check. Zero dependencies beyond POSIX
# sh + grep + sed.
#
# Usage: sh tools/check_md_links.sh [files...]
# With no arguments, checks *.md and docs/*.md from the repo root.

set -u
cd "$(dirname "$0")/.." || exit 2

if [ "$#" -gt 0 ]; then
  files="$*"
else
  files=$(ls ./*.md docs/*.md 2>/dev/null)
fi

status=0
for f in $files; do
  [ -f "$f" ] || { echo "linkcheck: no such file: $f" >&2; status=1; continue; }
  dir=$(dirname "$f")
  # inline links: [text](target). One match per line is enough to catch
  # doc rot; multi-link lines are split on ")(" boundaries first.
  grep -n -o '\[[^]]*\]([^)]*)' "$f" | while IFS= read -r hit; do
    line=${hit%%:*}
    target=$(printf '%s' "$hit" | sed 's/^[0-9]*:\[[^]]*\](\([^)]*\))$/\1/')
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    case "$path" in
      /*) resolved=".$path" ;;
      *) resolved="$dir/$path" ;;
    esac
    if [ ! -e "$resolved" ]; then
      echo "$f:$line: broken link -> $target"
    fi
  done
done > /tmp/linkcheck.$$ 2>&1

if [ -s /tmp/linkcheck.$$ ]; then
  cat /tmp/linkcheck.$$
  rm -f /tmp/linkcheck.$$
  echo "linkcheck: FAILED" >&2
  exit 1
fi
rm -f /tmp/linkcheck.$$
echo "linkcheck: all relative markdown links resolve"
exit $status
