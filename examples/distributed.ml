(* Distributed Pequod (§2.4) on the event simulator: base data lives on
   home servers; compute servers fetch missing ranges, get subscriptions
   installed, and then receive pushed updates — eventually consistent.

   Run with: dune exec examples/distributed.exe *)

module Event = Pequod_sim.Event
module Cluster = Pequod_sim.Cluster

let partition ~table ~lo =
  match table with
  | "p" | "s" -> (
    (* home server chosen by the user/poster component *)
    match String.split_on_char '|' lo with
    | _ :: who :: _ -> Some (Hashtbl.hash who mod 2)
    | _ -> Some 0)
  | _ -> None (* computed tables are not partitioned *)

let () =
  let event = Event.create () in
  let cluster = Cluster.create ~event ~nbase:2 ~ncompute:2 ~partition ~latency:0.0005 () in
  Cluster.add_join cluster
    "t|<user>|<time>|<poster> = check s|<user>|<poster> copy p|<poster>|<time>";

  (* writes go to their home servers *)
  Cluster.client_put cluster "s|ann|bob" "1";
  Cluster.client_put cluster "s|ann|liz" "1";
  Cluster.client_put cluster "p|bob|0000000100" "hello from bob";
  Cluster.client_put cluster "p|liz|0000000110" "liz checking in";
  Event.run event;

  let compute = List.hd (Cluster.compute_ids cluster) in
  Printf.printf "cluster: 2 base servers, 2 compute servers; reads go to node %d\n\n" compute;

  (* first timeline check: the compute server fetches base ranges from
     their home servers and subscribes to them *)
  Cluster.client_scan cluster ~via:compute ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|")
    (fun pairs ->
      Printf.printf "[t=%.4fs] first check of ann's timeline (%d fetch rounds so far):\n"
        (Event.now event) (Cluster.fetch_rounds cluster);
      List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) pairs);
  Event.run event;
  Printf.printf "subscriptions installed at home servers: %d\n\n"
    (Cluster.subscription_count cluster);

  (* a new post is pushed to the subscribed compute server: no new fetch *)
  Cluster.client_put cluster "p|bob|0000000150" "pushed through the subscription";
  Event.run event;
  Cluster.client_scan cluster ~via:compute ~lo:"t|ann|" ~hi:(Strkey.prefix_upper "t|ann|")
    (fun pairs ->
      Printf.printf "[t=%.4fs] after bob posts again (no refetch, %d fetch rounds):\n"
        (Event.now event) (Cluster.fetch_rounds cluster);
      List.iter (fun (k, v) -> Printf.printf "  %-28s -> %s\n" k v) pairs);
  Event.run event;

  Printf.printf "\ninter-server traffic: %d bytes in %d messages; %d scans served\n"
    (Cluster.server_bytes cluster)
    (let total = ref 0 in
     List.iter
       (fun id -> total := !total + Cluster.node_msgs_sent (Cluster.node cluster id))
       (Cluster.base_ids cluster @ Cluster.compute_ids cluster);
     !total)
    (Cluster.scans_done cluster)
